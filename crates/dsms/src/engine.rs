//! The continuous-query engine: many registered queries, one shared
//! window pipeline.
//!
//! Sharing works because every window-based summary in the system consumes
//! the *same input*: a sorted window. The engine picks one window size that
//! satisfies every query (the largest required minimum — lossy counting's
//! guarantee only tightens with bigger buckets, and quantile sampling is
//! window-size agnostic), sorts each window exactly once on the configured
//! device, and fans the sorted run out to all summaries. The sort — 80–95 %
//! of the work (paper §3.2) — is paid once regardless of how many queries
//! are registered.

use std::sync::{Arc, Mutex};

use gsm_core::{BitPrefixHierarchy, Engine, HhhEntry, ShardedPipeline, TimeBreakdown};
use gsm_durable::{CheckpointStore, Wal};
use gsm_model::SimTime;
use gsm_obs::Recorder;
use gsm_sketch::{
    ExpHistogram, HhhSummary, LossyCounting, MergeableSummary, OpCounter, SinkOps,
    SlidingFrequency, SlidingQuantile, SummarySink,
};

use crate::durable::{DurableOptions, DurableState, RecoveryReport};
use crate::snapshot::{EngineSnapshot, QueryKind, SnapshotRegistry};

/// Handle to a registered continuous query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryId(usize);

impl QueryId {
    /// The query's registration index — stable across
    /// checkpoint/restore, and the identifier wire protocols and
    /// [`EngineSnapshot`] readers use to name the query without holding a
    /// `QueryId`.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The answer to a generic [`StreamEngine::query`] call.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryAnswer {
    /// A φ-quantile value.
    Quantile(f32),
    /// Heavy hitters at a support threshold.
    HeavyHitters(Vec<(f32, u64)>),
    /// Hierarchical heavy hitters at a support threshold.
    Hhh(Vec<HhhEntry>),
}

/// A typed continuous-query request: the parameter carries its meaning in
/// the variant, replacing the untyped `param: f64` overload of
/// [`StreamEngine::query`] / [`EngineSnapshot::answer`]. Both untyped
/// forms remain as thin wrappers that map onto this type.
///
/// [`EngineSnapshot::answer`]: crate::snapshot::EngineSnapshot::answer
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum QueryRequest {
    /// Whole-stream φ-quantile.
    Quantile {
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
    },
    /// Whole-stream heavy hitters at a support threshold.
    HeavyHitters {
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
    /// Hierarchical heavy hitters at a support threshold.
    Hhh {
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
    /// Sliding-window φ-quantile.
    SlidingQuantile {
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
    },
    /// Sliding-window heavy hitters at a support threshold.
    SlidingFrequency {
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
}

impl QueryRequest {
    /// The query kind this request addresses.
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryRequest::Quantile { .. } => QueryKind::Quantile,
            QueryRequest::HeavyHitters { .. } => QueryKind::Frequency,
            QueryRequest::Hhh { .. } => QueryKind::Hhh,
            QueryRequest::SlidingQuantile { .. } => QueryKind::SlidingQuantile,
            QueryRequest::SlidingFrequency { .. } => QueryKind::SlidingFrequency,
        }
    }

    /// The untyped parameter (φ for quantile kinds, the support otherwise)
    /// — the bridge back to the legacy `param: f64` interfaces.
    pub fn param(&self) -> f64 {
        match *self {
            QueryRequest::Quantile { phi } | QueryRequest::SlidingQuantile { phi } => phi,
            QueryRequest::HeavyHitters { support }
            | QueryRequest::Hhh { support }
            | QueryRequest::SlidingFrequency { support } => support,
        }
    }

    /// The typed form of a legacy `(kind, param)` pair.
    pub fn from_kind(kind: QueryKind, param: f64) -> Self {
        match kind {
            QueryKind::Quantile => QueryRequest::Quantile { phi: param },
            QueryKind::Frequency => QueryRequest::HeavyHitters { support: param },
            QueryKind::Hhh => QueryRequest::Hhh { support: param },
            QueryKind::SlidingQuantile => QueryRequest::SlidingQuantile { phi: param },
            QueryKind::SlidingFrequency => QueryRequest::SlidingFrequency { support: param },
        }
    }
}

/// A columnar batch of stream values for [`StreamEngine::push_batch`]:
/// either a column borrowed from the caller (zero-copy) or an owned slab
/// (e.g. filled by a batch generator and handed off).
#[derive(Clone, Debug)]
pub enum ValueBatch<'a> {
    /// A column borrowed from the caller.
    Borrowed(&'a [f32]),
    /// An owned slab.
    Owned(Vec<f32>),
}

impl ValueBatch<'_> {
    /// The batch's values as one contiguous column.
    pub fn as_slice(&self) -> &[f32] {
        match self {
            ValueBatch::Borrowed(s) => s,
            ValueBatch::Owned(v) => v,
        }
    }

    /// Number of values in the batch.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the batch holds no values.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl<'a> From<&'a [f32]> for ValueBatch<'a> {
    fn from(values: &'a [f32]) -> Self {
        ValueBatch::Borrowed(values)
    }
}

impl<'a> From<&'a Vec<f32>> for ValueBatch<'a> {
    fn from(values: &'a Vec<f32>) -> Self {
        ValueBatch::Borrowed(values.as_slice())
    }
}

impl From<Vec<f32>> for ValueBatch<'static> {
    fn from(values: Vec<f32>) -> Self {
        ValueBatch::Owned(values)
    }
}

#[derive(Clone, serde::Serialize, serde::Deserialize)]
enum QuerySpec {
    Quantile {
        eps: f64,
    },
    Frequency {
        eps: f64,
    },
    Hhh {
        eps: f64,
        hierarchy: BitPrefixHierarchy,
    },
    SlidingQuantile {
        eps: f64,
        width: usize,
    },
    SlidingFrequency {
        eps: f64,
        width: usize,
    },
}

impl QuerySpec {
    /// The smallest shared window this query can accept.
    fn min_window(&self) -> usize {
        match self {
            // Quantile sampling works at any window size; 1024 keeps the
            // sort phase dominant (see gsm-core). Sliding summaries
            // re-chunk each sorted window into their own block size, so
            // they are window-size agnostic too.
            QuerySpec::Quantile { .. }
            | QuerySpec::SlidingQuantile { .. }
            | QuerySpec::SlidingFrequency { .. } => 1024,
            QuerySpec::Frequency { eps } | QuerySpec::Hhh { eps, .. } => {
                (1.0 / eps).ceil() as usize
            }
        }
    }

    /// The snapshot-side kind tag for this spec.
    fn kind(&self) -> QueryKind {
        match self {
            QuerySpec::Quantile { .. } => QueryKind::Quantile,
            QuerySpec::Frequency { .. } => QueryKind::Frequency,
            QuerySpec::Hhh { .. } => QueryKind::Hhh,
            QuerySpec::SlidingQuantile { .. } => QueryKind::SlidingQuantile,
            QuerySpec::SlidingFrequency { .. } => QueryKind::SlidingFrequency,
        }
    }
}

#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub(crate) enum QuerySketch {
    Quantile(ExpHistogram),
    Frequency(LossyCounting),
    Hhh(HhhSummary),
    SlidingQuantile(SlidingQuantile),
    SlidingFrequency(SlidingFrequency),
}

impl QuerySketch {
    /// Folds another shard's sketch for the *same* query into this one.
    ///
    /// # Panics
    ///
    /// Panics if the sketches answer different query kinds — shard fans are
    /// built from one spec list, so a mismatch is a construction bug.
    pub(crate) fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        match (self, other) {
            (QuerySketch::Quantile(a), QuerySketch::Quantile(b)) => a.merge_from(b, ops),
            (QuerySketch::Frequency(a), QuerySketch::Frequency(b)) => a.merge_from(b, ops),
            (QuerySketch::Hhh(a), QuerySketch::Hhh(b)) => a.merge_from(b, ops),
            (QuerySketch::SlidingQuantile(a), QuerySketch::SlidingQuantile(b)) => {
                a.merge_from(b, ops)
            }
            (QuerySketch::SlidingFrequency(a), QuerySketch::SlidingFrequency(b)) => {
                a.merge_from(b, ops)
            }
            _ => panic!("cannot merge sketches of different query kinds"),
        }
    }
}

impl SummarySink for QuerySketch {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        match self {
            QuerySketch::Quantile(q) => q.push_sorted_window(sorted),
            QuerySketch::Frequency(f) => f.push_sorted_window(sorted),
            QuerySketch::Hhh(h) => h.push_sorted_window(sorted),
            // Sliding summaries consume fixed-size blocks, which are
            // smaller than the shared window; chunks of a sorted run are
            // themselves sorted, so re-chunking preserves the contract.
            QuerySketch::SlidingQuantile(s) => {
                for block in sorted.chunks(s.block_size()) {
                    s.push_sorted_block(block);
                }
            }
            QuerySketch::SlidingFrequency(s) => {
                for block in sorted.chunks(s.block_size()) {
                    s.push_sorted_block(block);
                }
            }
        }
    }

    fn ops(&self) -> SinkOps {
        match self {
            QuerySketch::Quantile(q) => SummarySink::ops(q),
            QuerySketch::Frequency(f) => SummarySink::ops(f),
            QuerySketch::Hhh(h) => SummarySink::ops(h),
            QuerySketch::SlidingQuantile(s) => SummarySink::ops(s),
            QuerySketch::SlidingFrequency(s) => SummarySink::ops(s),
        }
    }
}

/// An observer of every sealed (sorted) window the shared pipeline absorbs.
///
/// Installed via [`StreamEngine::with_window_tap`]; the verification
/// harness uses it to collect the *admitted* sub-stream under load
/// shedding, so the degraded bounds can be certified against an exact
/// oracle over exactly what the engine saw.
pub type WindowTap = Box<dyn FnMut(&[f32]) + Send>;

/// Broadcast sink: fans every sorted run out to all registered queries'
/// summaries, so the shared sort is paid once regardless of query count.
///
/// Under sharding every shard owns one fan; the fans share the audit tap
/// (behind a mutex — shards seal windows from the ingest thread, so the
/// lock is uncontended) and merge sketch-by-sketch at query time.
#[derive(Clone)]
struct QueryFan {
    sketches: Vec<QuerySketch>,
    /// Audit tap, called on every sorted window before the sketches absorb
    /// it. Not part of the checkpointed state; shared across shard fans.
    tap: Option<Arc<Mutex<WindowTap>>>,
}

impl SummarySink for QueryFan {
    fn push_sorted_window(&mut self, sorted: &[f32]) {
        if let Some(tap) = &self.tap {
            (tap.lock().expect("window tap lock"))(sorted);
        }
        for sketch in &mut self.sketches {
            sketch.push_sorted_window(sorted);
        }
    }

    fn ops(&self) -> SinkOps {
        let mut total = SinkOps::default();
        for sketch in &self.sketches {
            total.absorb(sketch.ops());
        }
        total
    }
}

impl MergeableSummary for QueryFan {
    fn merge_from(&mut self, other: &Self, ops: &mut OpCounter) {
        assert_eq!(
            self.sketches.len(),
            other.sketches.len(),
            "shard fans must carry the same query set"
        );
        for (mine, theirs) in self.sketches.iter_mut().zip(&other.sketches) {
            mine.merge_from(theirs, ops);
        }
    }
}

/// The legacy (schema-1) checkpoint: query definitions plus one flat
/// sketch list — the single-shard engine's serialized state. Still
/// accepted by [`StreamEngine::restore`], which rebuilds it as one shard.
#[derive(serde::Serialize, serde::Deserialize)]
struct Checkpoint {
    window: usize,
    count: u64,
    n_hint: u64,
    specs: Vec<QuerySpec>,
    sketches: Vec<QuerySketch>,
}

/// The versioned multi-shard checkpoint envelope (schema 2).
///
/// Device ledgers (simulated time) are *not* checkpointed — they describe
/// the process, not the stream — so a restored engine's clock starts at
/// zero while its answers carry the full history. The same split is why
/// `recorder_enabled` and `window_tap_installed` are carried as explicit
/// flags rather than payload: both are process-side observers that cannot
/// be serialized, and the envelope records whether the source engine had
/// them so a restorer knows observation (not stream state) was dropped.
#[derive(serde::Serialize, serde::Deserialize)]
struct CheckpointV2 {
    /// Envelope schema version; this layout is 2.
    schema: u32,
    window: usize,
    count: u64,
    n_hint: u64,
    /// Shard count the engine ran with; restore rebuilds the same layout.
    shards: usize,
    /// The routing policy's stable name ([`ShardRouter::name`]); the
    /// engine always routes by value hash, which is stateless, so no
    /// router state accompanies it.
    router: String,
    /// Whether the source engine had a recorder installed (the recorder
    /// itself is process state and is not restored).
    recorder_enabled: bool,
    /// Whether the source engine had a window tap installed (taps are
    /// process state; a restored engine explicitly starts without one).
    window_tap_installed: bool,
    specs: Vec<QuerySpec>,
    /// Per-shard sketch lists, indexed `[shard][query]`.
    shard_sketches: Vec<Vec<QuerySketch>>,
}

/// The WAL-aware checkpoint envelope (schema 3): the schema-2 layout plus
/// the WAL horizon — the sequence number of the last log record whose
/// elements the snapshot already covers. Recovery replays only records
/// above it. Written by every checkpoint whether or not durability is
/// enabled (`wal_seq` is 0 without a log), so there is exactly one current
/// envelope layout.
#[derive(serde::Serialize, serde::Deserialize)]
struct CheckpointV3 {
    /// Envelope schema version; this layout is 3.
    schema: u32,
    window: usize,
    count: u64,
    n_hint: u64,
    shards: usize,
    router: String,
    recorder_enabled: bool,
    window_tap_installed: bool,
    /// Sequence number of the last WAL record covered by this snapshot
    /// (0 = nothing logged yet, or durability disabled).
    wal_seq: u64,
    specs: Vec<QuerySpec>,
    shard_sketches: Vec<Vec<QuerySketch>>,
}

/// Envelope schema written by [`StreamEngine::checkpoint`].
const CHECKPOINT_SCHEMA: u32 = 3;

/// A registry of continuous queries over one input stream, sharing a single
/// engine-offloaded sorting pipeline.
///
/// ```
/// use gsm_core::Engine;
/// use gsm_dsms::StreamEngine;
///
/// let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
/// let q = eng.register_quantile(0.02);
/// let f = eng.register_frequency(0.005);
/// eng.push_all((0..10_000).map(|i| (i % 100) as f32));
/// assert!((40.0..60.0).contains(&eng.quantile(q, 0.5)));
/// assert_eq!(eng.heavy_hitters(f, 0.009).len(), 100); // each value is 1%
/// ```
pub struct StreamEngine {
    engine: Engine,
    n_hint: u64,
    shards: usize,
    specs: Vec<QuerySpec>,
    pipeline: Option<ShardedPipeline<QueryFan>>,
    count: u64,
    obs: Recorder,
    /// Audit tap waiting to be installed into the shard fans at seal time.
    tap: Option<WindowTap>,
    /// Snapshot mailbox, installed by [`Self::serve`]. `None` means the
    /// engine is not serving and the publication hook is a single branch.
    registry: Option<Arc<SnapshotRegistry>>,
    /// Publish a fresh snapshot every this many newly sealed windows.
    publish_every: u64,
    /// Sealed-window count as of the last publication.
    published_windows: u64,
    /// WAL + checkpoint store, installed by [`Self::with_durability`].
    /// `None` means the engine is not durable and the ingest hook is a
    /// single branch.
    dur: Option<DurableState>,
}

impl StreamEngine {
    /// Creates an engine with no registered queries.
    pub fn new(engine: Engine) -> Self {
        StreamEngine {
            engine,
            n_hint: 100_000_000,
            shards: 1,
            specs: Vec::new(),
            pipeline: None,
            count: 0,
            obs: Recorder::disabled(),
            tap: None,
            registry: None,
            publish_every: 1,
            published_windows: 0,
            dur: None,
        }
    }

    /// Starts a validated configuration — the consolidated front door for
    /// the chained `with_*` constructors (see [`crate::EngineBuilder`]).
    pub fn builder(engine: Engine) -> crate::EngineBuilder {
        crate::EngineBuilder::new(engine)
    }

    /// Hints the expected stream length (affects quantile level budgets).
    pub fn with_n_hint(mut self, n: u64) -> Self {
        self.n_hint = n;
        self
    }

    /// Partitions ingestion across `k` shard pipelines (value-hash routed,
    /// each with its own sort backend and summaries); queries merge the
    /// shard summaries on demand ([`gsm_sketch::MergeableSummary`]), with
    /// merged error ≤ each query's registered ε plus an additive `k − 1`
    /// on frequency undercounts (surfaced by the summaries' own bounds).
    /// With `k = 1` — the default — the engine is byte-identical to the
    /// unsharded pipeline. On [`Engine::ParallelHost`] all shards submit
    /// to one worker pool, so the thread count stays the configured width.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the stream has already started.
    pub fn with_shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        assert!(
            self.pipeline.is_none(),
            "set the shard count before pushing stream data"
        );
        self.shards = k;
        self
    }

    /// The shard count configured via [`StreamEngine::with_shards`].
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Installs an observability recorder; it propagates into the shared
    /// pipeline when the engine seals. The engine then emits per-answer
    /// latency spans (`dsms_answer{kind=...}`), a `dsms_windows_sealed`
    /// gauge, and the pipeline's per-window spans and phase counters.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started (the recorder must be wired
    /// through the pipeline before any window is submitted).
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        assert!(
            self.pipeline.is_none(),
            "install the recorder before pushing stream data"
        );
        self.obs = rec;
        self
    }

    /// The engine's recorder (disabled unless installed via
    /// [`StreamEngine::with_recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// Installs an audit tap invoked with every sealed (sorted) window
    /// before the query sketches absorb it. Under load shedding the tap
    /// sees exactly the admitted sub-stream, which is what the degraded
    /// bounds must be certified against. The tap is observational state: it
    /// is not serialized by [`StreamEngine::checkpoint`] and a restored
    /// engine starts without one.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started (the tap must see every
    /// window from the first).
    pub fn with_window_tap(mut self, tap: WindowTap) -> Self {
        assert!(
            self.pipeline.is_none(),
            "install the window tap before pushing stream data"
        );
        self.tap = Some(tap);
        self
    }

    /// Attaches crash-safe durability (see [`DurableOptions`]): every
    /// sealed window is appended to a segmented, CRC-checksummed WAL in
    /// `opts.dir`, and every `CheckpointPolicy::EveryWindows` records the
    /// engine snapshots its envelope and truncates the log below the
    /// snapshot's horizon. Reopen the directory after a crash with
    /// [`Self::recover_from`].
    ///
    /// Durability I/O failures after this point (a failed append, fsync,
    /// or checkpoint save) panic rather than silently degrade the
    /// guarantee.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from creating the directory or the log —
    /// including refusing a directory that already holds WAL segments
    /// (recover instead of overwriting).
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started.
    pub fn with_durability(mut self, opts: DurableOptions) -> std::io::Result<Self> {
        assert!(
            self.pipeline.is_none(),
            "enable durability before pushing stream data"
        );
        self.dur = Some(DurableState::create(opts)?);
        Ok(self)
    }

    /// Registers an ε-approximate quantile query.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started.
    pub fn register_quantile(&mut self, eps: f64) -> QueryId {
        self.register(QuerySpec::Quantile { eps })
    }

    /// Registers an ε-approximate frequency / heavy-hitter query.
    pub fn register_frequency(&mut self, eps: f64) -> QueryId {
        self.register(QuerySpec::Frequency { eps })
    }

    /// Registers an ε-approximate hierarchical heavy-hitter query.
    pub fn register_hhh(&mut self, eps: f64, hierarchy: BitPrefixHierarchy) -> QueryId {
        self.register(QuerySpec::Hhh { eps, hierarchy })
    }

    /// Registers an ε-approximate quantile query over a sliding window of
    /// the last `width` elements. The summary consumes the shared sorted
    /// windows re-chunked into its own block size, so it coexists with
    /// whole-stream queries on one pipeline. Under sharding the window
    /// covers the shard-concatenated tail (see
    /// [`gsm_sketch::SlidingQuantile::merge_from`]).
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started, or (in the summary) if
    /// `width < 2/eps`.
    pub fn register_sliding_quantile(&mut self, eps: f64, width: usize) -> QueryId {
        self.register(QuerySpec::SlidingQuantile { eps, width })
    }

    /// Registers an ε-approximate frequency query over a sliding window of
    /// the last `width` elements.
    ///
    /// # Panics
    ///
    /// Panics if the stream has already started.
    pub fn register_sliding_frequency(&mut self, eps: f64, width: usize) -> QueryId {
        self.register(QuerySpec::SlidingFrequency { eps, width })
    }

    fn register(&mut self, spec: QuerySpec) -> QueryId {
        assert!(
            self.pipeline.is_none(),
            "register all queries before pushing stream data"
        );
        self.specs.push(spec);
        QueryId(self.specs.len() - 1)
    }

    /// The shared window size (available after sealing — i.e. after the
    /// first push or an explicit [`Self::seal`]).
    pub fn window(&self) -> usize {
        self.pipeline.as_ref().map_or(0, ShardedPipeline::window)
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.specs.len()
    }

    /// Elements pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Builds the shared pipeline and sketches. Called automatically by the
    /// first [`Self::push`].
    ///
    /// # Panics
    ///
    /// Panics if no queries are registered.
    pub fn seal(&mut self) {
        if self.pipeline.is_some() {
            return;
        }
        assert!(!self.specs.is_empty(), "register at least one query");
        let window = self
            .specs
            .iter()
            .map(QuerySpec::min_window)
            .max()
            .expect("non-empty");
        // Every shard carries the full query set over its partition; the
        // stream-length hint covers the whole stream, which keeps quantile
        // level budgets valid for the post-merge summary.
        let make_fan = |specs: &[QuerySpec], n_hint: u64, tap: &Option<Arc<Mutex<WindowTap>>>| {
            let sketches = specs
                .iter()
                .map(|spec| match spec {
                    QuerySpec::Quantile { eps } => QuerySketch::Quantile(ExpHistogram::new(
                        *eps,
                        window,
                        n_hint.max(window as u64),
                    )),
                    QuerySpec::Frequency { eps } => {
                        QuerySketch::Frequency(LossyCounting::with_window(*eps, window))
                    }
                    QuerySpec::Hhh { eps, hierarchy } => {
                        QuerySketch::Hhh(HhhSummary::with_window(*eps, window, hierarchy.clone()))
                    }
                    QuerySpec::SlidingQuantile { eps, width } => {
                        QuerySketch::SlidingQuantile(SlidingQuantile::new(*eps, *width))
                    }
                    QuerySpec::SlidingFrequency { eps, width } => {
                        QuerySketch::SlidingFrequency(SlidingFrequency::new(*eps, *width))
                    }
                })
                .collect();
            QueryFan {
                sketches,
                tap: tap.clone(),
            }
        };
        let tap = self.tap.take().map(|t| Arc::new(Mutex::new(t)));
        let mut pipeline = ShardedPipeline::new(self.engine, window, self.shards, |_| {
            make_fan(&self.specs, self.n_hint, &tap)
        });
        if self.obs.is_enabled() {
            pipeline = pipeline.with_recorder(self.obs.clone());
            self.obs.count("dsms_seals", 1);
            self.obs
                .count("dsms_queries_registered", self.specs.len() as u64);
            self.obs.record_event(gsm_obs::EngineEvent::Seal {
                window,
                shards: self.shards,
            });
        }
        self.pipeline = Some(pipeline);
        if self.dur.as_ref().is_some_and(|st| st.needs_base_checkpoint) {
            // The base checkpoint (horizon 0): recovery always finds an
            // envelope carrying the query set, even if the process dies
            // before the first periodic checkpoint.
            self.write_durable_checkpoint();
        }
    }

    /// Pushes one stream element into every registered query.
    ///
    /// This is the batch-of-one case of [`Self::push_batch`]; a length-1
    /// batch takes exactly one chunk, so the scalar path's semantics
    /// (per-element publish checks, durable bookkeeping) are unchanged.
    pub fn push(&mut self, value: f32) {
        self.push_batch(&[value][..]);
    }

    /// Pushes a columnar batch of stream elements into every registered
    /// query.
    ///
    /// The batch is split once at global window boundaries instead of
    /// checking per element. Each chunk is routed in one
    /// [`gsm_core::ShardRouter::route_batch`] pass and memcpy'd into the
    /// per-shard window buffers, and WAL/checkpoint bookkeeping runs once
    /// per chunk. Window-boundary chunking is what makes the batch path
    /// byte-identical to pushing the same values one at a time: the chunk
    /// boundary is simultaneously the durable record boundary (the pending
    /// WAL buffer fills exactly at `count % window == 0`) and, with one
    /// shard, the seal boundary — so seal sequences, checkpoints, WAL
    /// bytes, and answers all match the scalar path. With several shards,
    /// snapshot publication is evaluated at chunk boundaries rather than
    /// after every element, which can coalesce publications but never
    /// changes any published answer.
    pub fn push_batch<'a>(&mut self, batch: impl Into<ValueBatch<'a>>) {
        let batch = batch.into();
        let values = batch.as_slice();
        if values.is_empty() {
            return;
        }
        self.seal();
        if self.obs.is_enabled() {
            self.obs
                .observe("ingest_batch_elements", values.len() as u64);
        }
        let _span = self.obs.span("ingest_batch");
        let window = self.pipeline.as_ref().expect("sealed").window() as u64;
        let mut rest = values;
        while !rest.is_empty() {
            // Distance to the next global window boundary; the pending WAL
            // buffer holds exactly `count % window` elements, so a chunk
            // never overfills it.
            let room = (window - self.count % window) as usize;
            let (chunk, tail) = rest.split_at(room.min(rest.len()));
            rest = tail;
            self.count += chunk.len() as u64;
            self.pipeline.as_mut().expect("sealed").push_batch(chunk);
            if self.dur.is_some() {
                self.durable_ingest_chunk(chunk);
            }
            if self.registry.is_some() {
                self.maybe_publish();
            }
        }
    }

    /// Pushes every element of an iterator, staging into columnar batches
    /// internally so iterator sources get the amortized
    /// [`Self::push_batch`] path.
    pub fn push_all<I: IntoIterator<Item = f32>>(&mut self, values: I) {
        /// Staging slab size: a few windows' worth, so routing and window
        /// fills amortize without holding an unbounded buffer.
        const STAGE: usize = 8192;
        let mut values = values.into_iter();
        let mut stage = Vec::with_capacity(STAGE);
        loop {
            stage.clear();
            stage.extend(values.by_ref().take(STAGE));
            if stage.is_empty() {
                break;
            }
            self.push_batch(stage.as_slice());
        }
    }

    /// Forces buffered data through the shared pipeline.
    pub fn flush(&mut self) {
        self.seal();
        let pipeline = self.pipeline.as_mut().expect("sealed");
        pipeline.flush();
        if self.obs.is_enabled() {
            // Current value = windows the shared sort has fully sealed.
            self.obs
                .gauge_set("dsms_windows_sealed", pipeline.windows_sorted() as i64);
        }
        if self.registry.is_some() {
            self.maybe_publish();
        }
    }

    /// Turns the engine into a serving source: seals the pipeline, installs
    /// a [`SnapshotRegistry`], publishes the initial snapshot, and returns
    /// the registry handle for readers (e.g. `gsm_serve::QueryServer`).
    /// From here on, every [`Self::with_publish_every`]-th sealed window
    /// publishes a fresh snapshot. Idempotent — repeated calls return the
    /// same registry.
    ///
    /// # Panics
    ///
    /// Panics if no queries are registered.
    pub fn serve(&mut self) -> Arc<SnapshotRegistry> {
        self.seal();
        if let Some(reg) = &self.registry {
            return Arc::clone(reg);
        }
        let reg = Arc::new(SnapshotRegistry::new());
        self.registry = Some(Arc::clone(&reg));
        self.publish_now();
        reg
    }

    /// Sets the publication cadence: a fresh snapshot every `n` newly
    /// sealed windows (default 1). Raising it amortizes the per-publication
    /// clone+merge over more ingested data at the cost of reader staleness.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_publish_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "publication cadence must be at least 1 window");
        self.publish_every = n;
        self
    }

    /// Publishes a snapshot immediately if serving (no-op otherwise).
    /// Never flushes: the snapshot covers sealed windows only, so
    /// publication cannot move window boundaries or change any answer.
    pub fn publish_now(&mut self) {
        let Some(registry) = self.registry.clone() else {
            return;
        };
        let snap = self.build_snapshot();
        let epoch = registry.publish(snap);
        self.published_windows = self.pipeline.as_ref().expect("sealed").windows_sorted();
        if self.obs.is_enabled() {
            self.obs.count("dsms_snapshots_published", 1);
            self.obs.gauge_set("dsms_snapshot_epoch", epoch as i64);
            self.obs.record_event(gsm_obs::EngineEvent::Publish {
                epoch,
                windows_sealed: self.published_windows,
            });
        }
    }

    /// The publication hook: publish when enough windows sealed since the
    /// last snapshot. One branch plus a per-shard counter read — the cost
    /// ingestion pays per element while serving.
    fn maybe_publish(&mut self) {
        let sealed = self.pipeline.as_ref().expect("sealed").windows_sorted();
        if sealed >= self.published_windows + self.publish_every {
            self.publish_now();
        }
    }

    /// Clones + merges the absorbed summary state into an immutable
    /// snapshot. Shard 0 is cloned and the remaining shards fold in
    /// sketch-by-sketch — the same merge order as [`Self::answer`]'s
    /// `merged_sink`, so snapshot answers are byte-identical to direct
    /// answers over the same sealed windows. Merge work is charged to a
    /// local counter (surfaced as `dsms_snapshot_merge_ops`), not the
    /// pipeline's merge ledger, which continues to meter query-time merges
    /// only.
    fn build_snapshot(&self) -> EngineSnapshot {
        let pipeline = self.pipeline.as_ref().expect("sealed");
        let mut sketches = pipeline.shard(0).sink().sketches.clone();
        if pipeline.shard_count() > 1 {
            let mut ops = OpCounter::default();
            for shard in &pipeline.shards()[1..] {
                for (mine, theirs) in sketches.iter_mut().zip(&shard.sink().sketches) {
                    mine.merge_from(theirs, &mut ops);
                }
            }
            if self.obs.is_enabled() {
                self.obs.count("dsms_snapshot_merge_ops", ops.total());
                // Cross-shard merges widen the frequency undercount bound
                // relative to a single-shard run (DESIGN §10) — worth a
                // flight-recorder mark every time it happens.
                self.obs
                    .record_event(gsm_obs::EngineEvent::MergeBoundWidened {
                        queries: sketches.len(),
                        shards: pipeline.shard_count(),
                    });
            }
        }
        EngineSnapshot {
            epoch: 0, // assigned by the registry at publication
            pushed: self.count,
            absorbed: self.count - pipeline.unabsorbed(),
            window: pipeline.window(),
            windows_sealed: pipeline.windows_sorted(),
            kinds: self.specs.iter().map(QuerySpec::kind).collect(),
            sketches,
        }
    }

    /// Answers query `id` by reading its (possibly merged) sketch.
    ///
    /// With one shard the sole fan is borrowed in place — no clone, no
    /// merge, byte-identical to the unsharded engine. With `k > 1` the
    /// shard fans merge into a transient answer fan; the merge work lands
    /// in the sharded pipeline's merge ledger, never the ingest ledgers.
    fn answer<R>(&mut self, id: QueryId, read: impl FnOnce(&QuerySketch) -> R) -> R {
        self.flush();
        let pipeline = self.pipeline.as_mut().expect("sealed");
        if pipeline.shard_count() == 1 {
            read(&pipeline.shard(0).sink().sketches[id.0])
        } else {
            let merged = pipeline.merged_sink();
            read(&merged.sketches[id.0])
        }
    }

    /// Answers a quantile query. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a quantile query.
    pub fn quantile(&mut self, id: QueryId, phi: f64) -> f32 {
        let _span = self.obs.span_labeled("dsms_answer", ("kind", "quantile"));
        self.answer(id, |sketch| match sketch {
            QuerySketch::Quantile(q) => q.query(phi),
            _ => panic!("query {id:?} is not a quantile query"),
        })
    }

    /// Answers a heavy-hitters query at support `s`. Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a frequency query.
    pub fn heavy_hitters(&mut self, id: QueryId, s: f64) -> Vec<(f32, u64)> {
        let _span = self.obs.span_labeled("dsms_answer", ("kind", "frequency"));
        self.answer(id, |sketch| match sketch {
            QuerySketch::Frequency(f) => f.heavy_hitters(s),
            _ => panic!("query {id:?} is not a frequency query"),
        })
    }

    /// Answers a hierarchical heavy-hitters query at support `s`. Flushes
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an HHH query.
    pub fn hhh(&mut self, id: QueryId, s: f64) -> Vec<HhhEntry> {
        let _span = self.obs.span_labeled("dsms_answer", ("kind", "hhh"));
        self.answer(id, |sketch| match sketch {
            QuerySketch::Hhh(h) => h.query(s),
            _ => panic!("query {id:?} is not a hierarchical query"),
        })
    }

    /// Answers a sliding-window quantile query. Flushes first. Uses the
    /// frozen query form, so the answer is byte-identical to the same
    /// query against a published [`EngineSnapshot`] of the same state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a sliding-quantile query.
    pub fn sliding_quantile(&mut self, id: QueryId, phi: f64) -> f32 {
        let _span = self
            .obs
            .span_labeled("dsms_answer", ("kind", "sliding_quantile"));
        self.answer(id, |sketch| match sketch {
            QuerySketch::SlidingQuantile(s) => s.query_frozen(phi),
            _ => panic!("query {id:?} is not a sliding-quantile query"),
        })
    }

    /// Answers a sliding-window heavy-hitters query at support `s`.
    /// Flushes first.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a sliding-frequency query.
    pub fn sliding_heavy_hitters(&mut self, id: QueryId, s: f64) -> Vec<(f32, u64)> {
        let _span = self
            .obs
            .span_labeled("dsms_answer", ("kind", "sliding_frequency"));
        self.answer(id, |sketch| match sketch {
            QuerySketch::SlidingFrequency(f) => f.heavy_hitters(s),
            _ => panic!("query {id:?} is not a sliding-frequency query"),
        })
    }

    /// Answers a typed [`QueryRequest`] against the live engine. The
    /// request's variant must match the query's registered kind.
    ///
    /// # Panics
    ///
    /// Panics if the request variant does not match the query's kind, or
    /// if `id` is unknown.
    pub fn request(&mut self, id: QueryId, req: QueryRequest) -> QueryAnswer {
        let _span = self.obs.span_labeled("dsms_answer", ("kind", "generic"));
        self.answer(id, |sketch| match (req, sketch) {
            (QueryRequest::Quantile { phi }, QuerySketch::Quantile(q)) => {
                QueryAnswer::Quantile(q.query(phi))
            }
            (QueryRequest::HeavyHitters { support }, QuerySketch::Frequency(f)) => {
                QueryAnswer::HeavyHitters(f.heavy_hitters(support))
            }
            (QueryRequest::Hhh { support }, QuerySketch::Hhh(h)) => {
                QueryAnswer::Hhh(h.query(support))
            }
            (QueryRequest::SlidingQuantile { phi }, QuerySketch::SlidingQuantile(s)) => {
                QueryAnswer::Quantile(s.query_frozen(phi))
            }
            (QueryRequest::SlidingFrequency { support }, QuerySketch::SlidingFrequency(f)) => {
                QueryAnswer::HeavyHitters(f.heavy_hitters(support))
            }
            (req, _) => panic!("query {id:?} does not answer {:?} requests", req.kind()),
        })
    }

    /// Generic query interface: `param` is φ for quantile queries and the
    /// support `s` otherwise. A thin wrapper that maps the untyped pair
    /// onto the registered kind's [`QueryRequest`] variant and delegates
    /// to [`Self::request`].
    pub fn query(&mut self, id: QueryId, param: f64) -> QueryAnswer {
        let kind = self.specs[id.0].kind();
        self.request(id, QueryRequest::from_kind(kind, param))
    }

    /// Where the simulated time went, across the shared sort and every
    /// query's summary maintenance (the fan-out sink folds all queries'
    /// counters before the ledger prices them into phases).
    pub fn breakdown(&self) -> TimeBreakdown {
        self.pipeline
            .as_ref()
            .map(|p| p.ledger().breakdown())
            .unwrap_or_default()
    }

    /// Total simulated time.
    pub fn total_time(&self) -> SimTime {
        self.breakdown().total()
    }

    /// Serializes the engine's query state to JSON (flushes first) as a
    /// schema-3 multi-shard envelope: one sketch list per shard, plus the
    /// shard layout, routing policy, the WAL horizon (0 when durability is
    /// off), and explicit flags for the two process-side observers
    /// (recorder, window tap) that checkpoints cannot carry.
    ///
    /// # Panics
    ///
    /// Panics if no queries are registered.
    pub fn checkpoint(&mut self) -> String {
        let wal_seq = self.dur.as_ref().map_or(0, |st| st.next_seq - 1);
        self.checkpoint_doc(wal_seq)
    }

    /// Builds the envelope at an explicit WAL horizon. Flushes first, so
    /// partially buffered shard windows are absorbed — at exact record
    /// boundaries (where the durable checkpoints land) this is the same
    /// flush the reference run performs, keeping window chunking and
    /// therefore every answer byte-identical across recovery.
    fn checkpoint_doc(&mut self, wal_seq: u64) -> String {
        self.flush();
        let pipeline = self.pipeline.as_mut().expect("sealed");
        let shard_sketches = pipeline
            .shards()
            .iter()
            .map(|shard| shard.sink().sketches.clone())
            .collect();
        let cp = CheckpointV3 {
            schema: CHECKPOINT_SCHEMA,
            window: pipeline.window(),
            count: self.count,
            n_hint: self.n_hint,
            shards: pipeline.shard_count(),
            router: pipeline.router_name().to_string(),
            recorder_enabled: self.obs.is_enabled(),
            window_tap_installed: pipeline.shard(0).sink().tap.is_some(),
            wal_seq,
            specs: self.specs.clone(),
            shard_sketches,
        };
        serde_json::to_string(&cp).expect("summaries serialize infallibly")
    }

    /// The WAL hook on the push path: buffer the chunk and, once a full
    /// window has accumulated, append it as one record (redo logging — the
    /// elements already entered the pipeline) and run the checkpoint
    /// policy.
    ///
    /// [`Self::push_batch`] chunks at global window boundaries, so one
    /// call extends the pending buffer by at most a window's remainder
    /// (one `extend_from_slice` instead of per-element pushes) and fills
    /// it exactly — the appended record holds the same `window` elements
    /// in the same order as the scalar path, byte for byte.
    ///
    /// # Panics
    ///
    /// Panics on WAL I/O errors — durability cannot silently degrade.
    fn durable_ingest_chunk(&mut self, chunk: &[f32]) {
        let window = self.pipeline.as_ref().expect("sealed").window();
        let mut appended = false;
        let mut fsynced = false;
        let mut checkpoint_due = false;
        if let Some(st) = self.dur.as_mut() {
            st.pending.extend_from_slice(chunk);
            debug_assert!(
                st.pending.len() <= window,
                "window-boundary chunking bounds the pending fill"
            );
            if st.pending.len() >= window {
                let seq = st.next_seq;
                fsynced = st
                    .wal
                    .append(seq, &st.pending)
                    .unwrap_or_else(|e| panic!("durability: WAL append failed: {e}"));
                appended = true;
                st.pending.clear();
                st.next_seq += 1;
                st.records_since_checkpoint += 1;
                checkpoint_due = st
                    .opts
                    .checkpoint
                    .every()
                    .is_some_and(|n| st.records_since_checkpoint >= n);
            }
        }
        if appended && self.obs.is_enabled() {
            self.obs.count("wal_appends", 1);
            if fsynced {
                self.obs.count("wal_fsyncs", 1);
            }
        }
        if checkpoint_due {
            self.write_durable_checkpoint();
        }
    }

    /// Writes an incremental checkpoint: snapshot the envelope at the
    /// current WAL horizon, then (policy permitting) truncate log segments
    /// below it. Only called with an empty pending buffer — at seal time
    /// and right after an append — so the snapshot never covers elements
    /// the log hasn't sealed.
    ///
    /// # Panics
    ///
    /// Panics on checkpoint-store or WAL I/O errors.
    fn write_durable_checkpoint(&mut self) {
        let Some(mut st) = self.dur.take() else {
            return;
        };
        debug_assert!(
            st.pending.is_empty(),
            "checkpoint only at record boundaries"
        );
        let wal_seq = st.next_seq - 1;
        let json = self.checkpoint_doc(wal_seq);
        st.store
            .save(wal_seq, &json)
            .unwrap_or_else(|e| panic!("durability: checkpoint save failed: {e}"));
        if st.opts.truncate_on_checkpoint {
            st.wal
                .truncate_below(wal_seq)
                .unwrap_or_else(|e| panic!("durability: WAL truncation failed: {e}"));
        }
        st.records_since_checkpoint = 0;
        st.needs_base_checkpoint = false;
        self.dur = Some(st);
        if self.obs.is_enabled() {
            self.obs.count("wal_checkpoints", 1);
        }
    }

    /// Restores an engine from a [`Self::checkpoint`] string onto fresh
    /// pipelines for `engine`. Summaries resume exactly where they left
    /// off; the simulated-time ledger restarts at zero, and the restored
    /// engine starts without a recorder or window tap regardless of the
    /// envelope's observer flags (both are process state).
    ///
    /// Accepts the schema-3 envelope, the schema-2 envelope, and the
    /// legacy flat (schema-1) checkpoint, which restores as a single
    /// shard. Schema 3 is tried first: it is a strict superset of schema
    /// 2, which would otherwise parse a schema-3 document and silently
    /// drop its WAL horizon.
    ///
    /// # Errors
    ///
    /// Returns the JSON error for input matching no schema.
    ///
    /// # Panics
    ///
    /// Panics if an envelope is structurally inconsistent (shard list
    /// length disagreeing with its declared shard count).
    pub fn restore(engine: Engine, json: &str) -> Result<Self, serde_json::Error> {
        fn check_shards(shard_sketches: &[Vec<QuerySketch>], shards: usize) {
            assert_eq!(
                shard_sketches.len(),
                shards,
                "envelope shard list must match its declared shard count"
            );
        }
        let (n_hint, count, window, specs, shard_sketches) =
            match serde_json::from_str::<CheckpointV3>(json) {
                Ok(cp) => {
                    check_shards(&cp.shard_sketches, cp.shards);
                    (cp.n_hint, cp.count, cp.window, cp.specs, cp.shard_sketches)
                }
                // Not a v3 envelope — try schema 2, then the legacy flat
                // layout, before reporting the v3 parse error.
                Err(v3_err) => match serde_json::from_str::<CheckpointV2>(json) {
                    Ok(cp) => {
                        check_shards(&cp.shard_sketches, cp.shards);
                        (cp.n_hint, cp.count, cp.window, cp.specs, cp.shard_sketches)
                    }
                    Err(_) => match serde_json::from_str::<Checkpoint>(json) {
                        Ok(cp) => (cp.n_hint, cp.count, cp.window, cp.specs, vec![cp.sketches]),
                        Err(_) => return Err(v3_err),
                    },
                },
            };
        let mut eng = StreamEngine::new(engine)
            .with_n_hint(n_hint)
            .with_shards(shard_sketches.len());
        eng.specs = specs;
        eng.count = count;
        let mut fans = shard_sketches.into_iter().map(|sketches| QueryFan {
            sketches,
            tap: None,
        });
        eng.pipeline = Some(ShardedPipeline::new(engine, window, eng.shards, |_| {
            fans.next().expect("one fan per shard")
        }));
        Ok(eng)
    }

    /// Rebuilds an engine from a durable directory after a crash: restores
    /// the newest parseable checkpoint, repairs the WAL tail (discarding a
    /// torn final record and everything after detected corruption — never
    /// applying it), replays the surviving records above the checkpoint
    /// horizon through the ordinary ingest path — reproducing the crashed
    /// run's checkpoint-time flush schedule, so the recovered engine
    /// answers byte-identically to an uncrashed run over the same prefix —
    /// and reopens the log so ingestion continues durably.
    ///
    /// Records at or below the checkpoint horizon (stale segments left by
    /// whole-segment truncation granularity, or by a crash between
    /// checkpoint and truncate) are skipped, never replayed twice. The
    /// recovered engine reports to `recorder` (pass
    /// [`Recorder::disabled`] for none); as with [`Self::restore`], window
    /// taps and simulated-time ledgers are not recovered.
    ///
    /// # Errors
    ///
    /// * [`std::io::ErrorKind::NotFound`] — no checkpoint in `opts.dir`
    ///   (no durable engine ever sealed there).
    /// * [`std::io::ErrorKind::InvalidData`] — checkpoints exist but none
    ///   parses.
    /// * Other I/O errors from scanning or repairing the log.
    pub fn recover_from(
        engine: Engine,
        opts: DurableOptions,
        recorder: Recorder,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let store = CheckpointStore::open(&opts.dir)?;
        let ckpts = store.load_all_desc()?;
        if ckpts.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no checkpoint in {}", opts.dir.display()),
            ));
        }
        let mut restored = None;
        for (wal_seq, json) in &ckpts {
            if let Ok(eng) = StreamEngine::restore(engine, json) {
                restored = Some((*wal_seq, eng));
                break;
            }
        }
        let Some((ckpt_seq, mut eng)) = restored else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{} checkpoint(s) in {} but none parses",
                    ckpts.len(),
                    opts.dir.display()
                ),
            ));
        };
        eng.obs = recorder;
        let (wal, scanned) = Wal::open_for_append(&opts.dir, opts.wal_options())?;
        let every = opts.checkpoint.every();
        let mut report = RecoveryReport {
            checkpoint_wal_seq: ckpt_seq,
            replayed_records: 0,
            replayed_elements: 0,
            skipped_records: 0,
            recovered_count: eng.count,
            last_applied_seq: ckpt_seq,
            torn_tail: scanned.torn_tail,
            corruption: scanned.corruption.clone(),
            segments_scanned: scanned.segments,
        };
        let mut replay_gap = false;
        for rec in &scanned.records {
            if rec.seq <= ckpt_seq {
                report.skipped_records += 1;
                continue;
            }
            if rec.seq != report.last_applied_seq + 1 {
                // Only reachable when the newest checkpoint failed to
                // parse and the log was already truncated past the older
                // one we fell back to: the tail cannot be applied
                // contiguously, so stop — never apply out of order.
                report.corruption = Some(format!(
                    "replay gap: expected record seq {}, found {}",
                    report.last_applied_seq + 1,
                    rec.seq
                ));
                replay_gap = true;
                break;
            }
            for &v in &rec.payload {
                eng.push(v);
            }
            if every.is_some_and(|n| rec.seq % n == 0) {
                // The crashed run flushed here when it checkpointed;
                // reproduce it so shard window chunking — and therefore
                // every answer — matches byte for byte.
                eng.flush();
            }
            report.replayed_records += 1;
            report.replayed_elements += rec.payload.len() as u64;
            report.last_applied_seq = rec.seq;
        }
        report.recovered_count = eng.count;
        let wal = if scanned.last_seq() == report.last_applied_seq && !replay_gap {
            wal
        } else {
            // The usable history ends at `last_applied_seq` but the log on
            // disk does not (a stale-only tail below the checkpoint, or an
            // inapplicable one past a replay gap). Appending after it
            // would leave a sequence gap a later scan must reject, so
            // rebuild the log and restart in a fresh segment.
            drop(wal);
            gsm_durable::wal::clear(&opts.dir)?;
            Wal::create(&opts.dir, opts.wal_options())?
        };
        eng.dur = Some(DurableState {
            wal,
            store,
            records_since_checkpoint: every.map_or(0, |n| report.last_applied_seq % n),
            next_seq: report.last_applied_seq + 1,
            pending: Vec::new(),
            needs_base_checkpoint: false,
            opts,
        });
        if eng.obs.is_enabled() {
            eng.obs.count("dsms_recoveries", 1);
            eng.obs.record_event(gsm_obs::EngineEvent::Recovery {
                checkpoint_wal_seq: report.checkpoint_wal_seq,
                replayed_records: report.replayed_records,
                replayed_elements: report.replayed_elements,
                torn_tail: report.torn_tail,
                corruption: report.corruption.clone().unwrap_or_default(),
            });
        }
        Ok((eng, report))
    }

    /// Sustained service rate so far, in elements per simulated second.
    ///
    /// Returns `f64::INFINITY` before any time has been charged.
    pub fn service_rate(&self) -> f64 {
        let t = self.total_time().as_secs();
        if t == 0.0 {
            f64::INFINITY
        } else {
            self.count as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotError;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_stream(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.random_range(0..5) == 0 {
                    rng.random_range(0..16) as f32
                } else {
                    rng.random_range(0..65_536) as f32
                }
            })
            .collect()
    }

    #[test]
    fn shared_pipeline_serves_all_query_kinds() {
        let data = mixed_stream(60_000, 1);
        let mut eng = StreamEngine::new(Engine::GpuSim).with_n_hint(60_000);
        let q = eng.register_quantile(0.01);
        let f = eng.register_frequency(0.001);
        let h = eng.register_hhh(0.001, BitPrefixHierarchy::new(vec![4, 8]));
        eng.push_all(data.iter().copied());

        let median = eng.quantile(q, 0.5);
        assert!(median.is_finite());
        let hot = eng.heavy_hitters(f, 0.01);
        assert!(!hot.is_empty(), "the 16 hot values are ~1.25% each");
        let hhh = eng.hhh(h, 0.1);
        assert!(
            hhh.iter().any(|e| e.level > 0),
            "hot values share a 4-bit prefix (20% total): {hhh:?}"
        );
        assert_eq!(eng.count(), 60_000);
        assert_eq!(eng.query_count(), 3);
    }

    #[test]
    fn answers_match_standalone_estimators() {
        // Sharing must not change any answer: compare against the
        // standalone estimators at the same window size.
        let data = mixed_stream(40_000, 2);
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(40_000);
        let q = eng.register_quantile(0.01);
        let f = eng.register_frequency(0.001);
        eng.push_all(data.iter().copied());
        let window = eng.window();

        let mut q_alone = gsm_core::QuantileEstimator::builder(0.01)
            .engine(Engine::Host)
            .n_hint(40_000)
            .window(window)
            .build();
        q_alone.push_all(data.iter().copied());
        assert_eq!(eng.quantile(q, 0.5), q_alone.query(0.5));

        let mut f_alone = LossyCounting::with_window(0.001, window);
        for chunk in data.chunks(window) {
            let mut w = chunk.to_vec();
            w.sort_by(f32::total_cmp);
            f_alone.push_sorted_window(&w);
        }
        assert_eq!(eng.heavy_hitters(f, 0.01), f_alone.heavy_hitters(0.01));
    }

    #[test]
    fn shared_sort_amortizes_across_queries() {
        // Adding queries must increase total time sublinearly: the sort is
        // shared, only summary maintenance grows.
        let data = mixed_stream(50_000, 3);
        let time_with = |kinds: usize| {
            let mut eng = StreamEngine::new(Engine::CpuSim).with_n_hint(50_000);
            let _ = eng.register_frequency(0.001);
            if kinds >= 2 {
                let _ = eng.register_quantile(0.01);
            }
            if kinds >= 3 {
                let _ = eng.register_hhh(0.001, BitPrefixHierarchy::new(vec![8]));
            }
            eng.push_all(data.iter().copied());
            eng.flush();
            eng.total_time().as_secs()
        };
        let one = time_with(1);
        let three = time_with(3);
        assert!(
            three < 1.6 * one,
            "3 queries must cost far less than 3x one query: {one:.4}s -> {three:.4}s"
        );
    }

    #[test]
    fn window_is_max_of_query_minimums() {
        let mut eng = StreamEngine::new(Engine::Host);
        let _ = eng.register_frequency(0.01); // needs >= 100
        let _ = eng.register_frequency(0.0005); // needs >= 2000
        let _ = eng.register_quantile(0.1); // needs >= 1024
        eng.seal();
        assert_eq!(eng.window(), 2000);
    }

    #[test]
    fn engines_agree() {
        let data = mixed_stream(30_000, 4);
        let answers: Vec<_> = [Engine::GpuSim, Engine::CpuSim, Engine::Host]
            .into_iter()
            .map(|e| {
                let mut eng = StreamEngine::new(e).with_n_hint(30_000);
                let f = eng.register_frequency(0.001);
                eng.push_all(data.iter().copied());
                eng.heavy_hitters(f, 0.01)
            })
            .collect();
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let data = mixed_stream(40_000, 9);
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(80_000);
        let q = eng.register_quantile(0.01);
        let f = eng.register_frequency(0.001);
        eng.push_all(data[..20_000].iter().copied());
        let json = eng.checkpoint();

        // Restore on a different engine and continue the stream.
        let mut restored = StreamEngine::restore(Engine::GpuSim, &json).expect("restore");
        assert_eq!(restored.count(), 20_000);
        eng.push_all(data[20_000..].iter().copied());
        restored.push_all(data[20_000..].iter().copied());
        assert_eq!(eng.quantile(q, 0.5), restored.quantile(q, 0.5));
        assert_eq!(eng.heavy_hitters(f, 0.01), restored.heavy_hitters(f, 0.01));
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(StreamEngine::restore(Engine::Host, "not json").is_err());
    }

    #[test]
    #[should_panic(expected = "before pushing")]
    fn late_registration_rejected() {
        let mut eng = StreamEngine::new(Engine::Host);
        let _ = eng.register_quantile(0.05);
        eng.push(1.0);
        let _ = eng.register_frequency(0.01);
    }

    #[test]
    #[should_panic(expected = "before pushing")]
    fn registration_after_explicit_seal_rejected() {
        // seal() builds the shared pipeline even before any push; the query
        // set must be frozen from that point on.
        let mut eng = StreamEngine::new(Engine::Host);
        let _ = eng.register_quantile(0.05);
        eng.seal();
        let _ = eng.register_frequency(0.01);
    }

    #[test]
    fn checkpoint_with_partial_window_keeps_every_element() {
        // Checkpoint mid-window: the partial buffer must be flushed into
        // the summaries, not dropped — and not double-counted on restore.
        let data = mixed_stream(5_003, 11); // window = 1024, 907 stragglers
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        eng.push_all(data.iter().copied());
        assert_eq!(eng.window(), 1024);
        assert_ne!(
            data.len() % eng.window(),
            0,
            "checkpoint must land mid-window"
        );

        let json = eng.checkpoint();
        let mut restored = StreamEngine::restore(Engine::Host, &json).expect("restore");
        assert_eq!(restored.count(), eng.count());
        assert_eq!(restored.count(), 5_003);
        assert_eq!(eng.quantile(q, 0.5), restored.quantile(q, 0.5));
        assert_eq!(eng.heavy_hitters(f, 0.01), restored.heavy_hitters(f, 0.01));

        // The original engine must also answer identically after the
        // checkpoint (its buffer was flushed, not stolen).
        let before = eng.quantile(q, 0.25);
        let after = eng.quantile(q, 0.25);
        assert_eq!(before, after);
    }

    #[test]
    fn recorder_observes_answers_and_windows() {
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(20_000)
            .with_recorder(rec.clone());
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        eng.push_all(mixed_stream(20_000, 7));
        let _ = eng.quantile(q, 0.5);
        let _ = eng.heavy_hitters(f, 0.01);
        assert_eq!(rec.counter("dsms_seals"), 1);
        assert_eq!(rec.counter("dsms_queries_registered"), 2);
        // window = 1024 → 19 full windows + the flushed partial.
        assert_eq!(rec.gauge("dsms_windows_sealed").unwrap().current, 20);
        let quantile_answers = rec
            .histogram_labeled("dsms_answer", ("kind", "quantile"))
            .unwrap();
        assert_eq!(quantile_answers.count, 1);
        assert_eq!(
            rec.histogram_labeled("dsms_answer", ("kind", "frequency"))
                .unwrap()
                .count,
            1
        );
        assert_eq!(rec.counter("windows_absorbed"), 20);
        // The seal leaves a structured flight-recorder event too.
        assert!(rec.flight_events().iter().any(|e| matches!(
            e.event,
            gsm_obs::EngineEvent::Seal {
                window: 1024,
                shards: 1
            }
        )));
    }

    #[test]
    fn serving_engine_records_publish_and_merge_flight_events() {
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(8192)
            .with_shards(2)
            .with_publish_every(2)
            .with_recorder(rec.clone());
        let _ = eng.register_quantile(0.05);
        let registry = eng.serve();
        eng.push_all(mixed_stream(8192, 11));
        eng.flush();
        eng.publish_now();
        assert!(registry.epoch() >= 1);

        let events = rec.flight_events();
        let publishes: Vec<_> = events
            .iter()
            .filter_map(|e| match e.event {
                gsm_obs::EngineEvent::Publish { epoch, .. } => Some(epoch),
                _ => None,
            })
            .collect();
        assert!(!publishes.is_empty());
        // Epochs in the ring are strictly increasing and end at the
        // registry's current epoch.
        assert!(publishes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*publishes.last().unwrap(), registry.epoch());
        // Two shards means every published snapshot required a cross-shard
        // merge, which widens the frequency bound — recorded as an event.
        assert!(events.iter().any(|e| matches!(
            e.event,
            gsm_obs::EngineEvent::MergeBoundWidened {
                queries: 1,
                shards: 2
            }
        )));
    }

    #[test]
    fn window_tap_sees_every_sealed_window_without_changing_answers() {
        use std::sync::{Arc, Mutex};
        let data = mixed_stream(10_000, 13);

        let run = |tap: Option<WindowTap>| {
            let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
            if let Some(t) = tap {
                eng = eng.with_window_tap(t);
            }
            let q = eng.register_quantile(0.02);
            eng.push_all(data.iter().copied());
            eng.quantile(q, 0.5)
        };

        let seen: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let tapped = run(Some(Box::new(move |w: &[f32]| {
            sink.lock().expect("tap lock").extend_from_slice(w);
        })));
        assert_eq!(tapped, run(None), "the tap must never change answers");

        let seen = seen.lock().expect("tap lock");
        assert_eq!(seen.len(), data.len(), "the tap sees every element");
        // The tap sees sorted windows: same multiset, window-sorted order.
        let mut expected = data.clone();
        expected.sort_by(f32::total_cmp);
        let mut observed = seen.clone();
        observed.sort_by(f32::total_cmp);
        assert_eq!(observed, expected);
    }

    #[test]
    #[should_panic(expected = "before pushing")]
    fn late_window_tap_rejected() {
        let mut eng = StreamEngine::new(Engine::Host);
        let _ = eng.register_quantile(0.05);
        eng.push(1.0);
        let _ = eng.with_window_tap(Box::new(|_| {}));
    }

    #[test]
    fn sharded_engine_agrees_with_single_shard_within_eps() {
        let data = mixed_stream(40_000, 21);
        let answers = |k: usize| {
            let mut eng = StreamEngine::new(Engine::Host)
                .with_n_hint(40_000)
                .with_shards(k);
            let q = eng.register_quantile(0.02);
            let f = eng.register_frequency(0.001);
            eng.push_all(data.iter().copied());
            assert_eq!(eng.shard_count(), k);
            (eng.quantile(q, 0.5), eng.heavy_hitters(f, 0.01))
        };
        let (median_1, hot_1) = answers(1);
        for k in [2, 4] {
            let (median_k, hot_k) = answers(k);
            // Both medians are ε-approximate, so they sit within 2ε ranks
            // of each other; over ~65k distinct uniform values that is a
            // wide value window.
            assert!(
                (median_k - median_1).abs() <= 0.05 * 65_536.0,
                "k={k}: median {median_k} vs {median_1}"
            );
            // The 16 hot values (~1.25% each at 1% support) must all
            // survive sharding: undercount grows only by k − 1 per value.
            let ids = |hh: &[(f32, u64)]| {
                let mut v: Vec<u32> = hh.iter().map(|(x, _)| x.to_bits()).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(ids(&hot_k), ids(&hot_1), "k={k}");
        }
    }

    #[test]
    fn sharded_checkpoint_round_trips_exactly() {
        let data = mixed_stream(30_000, 23);
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(60_000)
            .with_shards(4);
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        eng.push_all(data[..15_000].iter().copied());
        let json = eng.checkpoint();

        let mut restored = StreamEngine::restore(Engine::GpuSim, &json).expect("restore");
        assert_eq!(restored.shard_count(), 4);
        assert_eq!(restored.count(), 15_000);
        eng.push_all(data[15_000..].iter().copied());
        restored.push_all(data[15_000..].iter().copied());
        assert_eq!(eng.quantile(q, 0.5), restored.quantile(q, 0.5));
        assert_eq!(eng.heavy_hitters(f, 0.01), restored.heavy_hitters(f, 0.01));
    }

    #[test]
    fn checkpoint_envelope_is_versioned_and_flags_observers() {
        let mut eng = StreamEngine::new(Engine::Host)
            .with_recorder(Recorder::enabled())
            .with_window_tap(Box::new(|_| {}))
            .with_shards(2);
        let _ = eng.register_frequency(0.01);
        eng.push_all((0..5_000).map(|i| (i % 64) as f32));
        let json = eng.checkpoint();
        let cp: CheckpointV3 = serde_json::from_str(&json).expect("v3 envelope");
        assert_eq!(cp.schema, CHECKPOINT_SCHEMA);
        assert_eq!(cp.shards, 2);
        assert_eq!(cp.router, "hash");
        assert!(cp.recorder_enabled, "envelope records the recorder");
        assert!(cp.window_tap_installed, "envelope records the tap");
        assert_eq!(cp.wal_seq, 0, "no WAL horizon without durability");
        assert_eq!(cp.shard_sketches.len(), 2);

        // A bare engine's envelope states the observers' *absence*.
        let mut bare = StreamEngine::new(Engine::Host);
        let _ = bare.register_frequency(0.01);
        bare.push_all((0..500).map(|i| (i % 8) as f32));
        let cp: CheckpointV3 = serde_json::from_str(&bare.checkpoint()).expect("v3 envelope");
        assert!(!cp.recorder_enabled);
        assert!(!cp.window_tap_installed);
    }

    #[test]
    fn legacy_flat_checkpoint_still_restores() {
        // Serialize the pre-envelope layout by hand and make sure restore
        // accepts it as a single-shard engine with identical answers.
        let data = mixed_stream(20_000, 27);
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(40_000);
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        eng.push_all(data.iter().copied());
        eng.flush();
        let legacy = Checkpoint {
            window: eng.window(),
            count: eng.count(),
            n_hint: 40_000,
            specs: eng.specs.clone(),
            sketches: eng
                .pipeline
                .as_ref()
                .unwrap()
                .shard(0)
                .sink()
                .sketches
                .clone(),
        };
        let json = serde_json::to_string(&legacy).expect("legacy serializes");

        let mut restored = StreamEngine::restore(Engine::Host, &json).expect("legacy restores");
        assert_eq!(restored.shard_count(), 1);
        assert_eq!(restored.count(), eng.count());
        assert_eq!(eng.quantile(q, 0.5), restored.quantile(q, 0.5));
        assert_eq!(eng.heavy_hitters(f, 0.01), restored.heavy_hitters(f, 0.01));
    }

    #[test]
    fn sharded_recorder_attributes_windows_per_shard() {
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(20_000)
            .with_recorder(rec.clone())
            .with_shards(2);
        let q = eng.register_quantile(0.02);
        eng.push_all(mixed_stream(20_000, 29));
        let _ = eng.quantile(q, 0.5);
        let s0 = rec.counter_labeled("windows_absorbed", ("shard", "0"));
        let s1 = rec.counter_labeled("windows_absorbed", ("shard", "1"));
        assert!(s0 > 0 && s1 > 0, "both shards absorb windows: {s0}/{s1}");
        assert_eq!(rec.counter_total("windows_absorbed"), s0 + s1);
        assert_eq!(rec.counter("shard_merges"), 1, "one merge per answer");
        assert!(rec.counter("shard_merge_ops") > 0);
    }

    #[test]
    fn sharded_window_tap_sees_every_element() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};
        let data = mixed_stream(10_000, 31);
        let seen: StdArc<StdMutex<Vec<f32>>> = StdArc::new(StdMutex::new(Vec::new()));
        let sink = StdArc::clone(&seen);
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(10_000)
            .with_window_tap(Box::new(move |w: &[f32]| {
                sink.lock().expect("tap lock").extend_from_slice(w);
            }))
            .with_shards(4);
        let q = eng.register_quantile(0.02);
        eng.push_all(data.iter().copied());
        let _ = eng.quantile(q, 0.5);
        let mut observed = seen.lock().expect("tap lock").clone();
        assert_eq!(
            observed.len(),
            data.len(),
            "tap sees every admitted element"
        );
        let mut expected = data.clone();
        expected.sort_by(f32::total_cmp);
        observed.sort_by(f32::total_cmp);
        assert_eq!(observed, expected);
    }

    #[test]
    fn sharded_parallel_host_serves_queries() {
        // All four shards submit to one worker pool (the pool-width
        // invariant is asserted at the pipeline layer); here the engine
        // path over it must answer correctly end to end.
        let data = mixed_stream(20_000, 37);
        let mut eng = StreamEngine::new(Engine::ParallelHost)
            .with_n_hint(20_000)
            .with_shards(4);
        let f = eng.register_frequency(0.001);
        eng.push_all(data.iter().copied());
        let hot = eng.heavy_hitters(f, 0.01);
        assert!(!hot.is_empty(), "the 16 hot values are ~1.25% each");
    }

    #[test]
    fn sliding_queries_ride_the_shared_pipeline() {
        // Phase 1 near 0, phase 2 near 100: the sliding median must track
        // the recent window while the whole-stream median stays between.
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(40_000);
        let sq = eng.register_sliding_quantile(0.05, 4_000);
        let sf = eng.register_sliding_frequency(0.05, 4_000);
        let q = eng.register_quantile(0.02);
        eng.push_all((0..20_000).map(|i| (i % 7) as f32));
        eng.push_all((0..20_000).map(|i| 100.0 + (i % 3) as f32));
        assert!(eng.sliding_quantile(sq, 0.5) >= 100.0);
        // The stream is an exact 50/50 split, so the whole-stream median
        // sits at the phase boundary (within ε ranks of it).
        let whole = eng.quantile(q, 0.5);
        assert!(
            (0.0..=100.0).contains(&whole),
            "whole-stream median {whole}"
        );
        let hot = eng.sliding_heavy_hitters(sf, 0.2);
        let values: Vec<u32> = hot.iter().map(|(v, _)| *v as u32).collect();
        assert!(
            values.iter().all(|v| (100..103).contains(v)),
            "sliding heavy hitters must come from the recent window: {hot:?}"
        );
    }

    #[test]
    fn snapshot_answers_match_direct_answers_byte_for_byte() {
        for engine in Engine::ALL {
            for shards in [1, 3] {
                let mut eng = StreamEngine::new(engine)
                    .with_n_hint(30_000)
                    .with_shards(shards);
                let q = eng.register_quantile(0.02);
                let f = eng.register_frequency(0.001);
                let h = eng.register_hhh(0.001, BitPrefixHierarchy::new(vec![4, 8]));
                let sq = eng.register_sliding_quantile(0.05, 4_000);
                let sf = eng.register_sliding_frequency(0.05, 4_000);
                let reg = eng.serve();
                eng.push_all(mixed_stream(30_000, 41).iter().copied());
                // Flush, then publish so snapshot and direct query cover
                // exactly the same sealed windows.
                eng.flush();
                eng.publish_now();
                let snap = reg.latest().expect("published");
                assert_eq!(snap.pushed(), 30_000);
                assert_eq!(snap.absorbed(), 30_000, "flush sealed everything");
                let direct_q = eng.quantile(q, 0.5);
                let direct_f = eng.heavy_hitters(f, 0.01);
                let direct_h = eng.hhh(h, 0.1);
                let direct_sq = eng.sliding_quantile(sq, 0.5);
                let direct_sf = eng.sliding_heavy_hitters(sf, 0.2);
                let ctx = format!("{engine:?} k={shards}");
                assert_eq!(
                    snap.quantile(q.index(), 0.5).unwrap().to_bits(),
                    direct_q.to_bits(),
                    "{ctx}"
                );
                assert_eq!(
                    snap.heavy_hitters(f.index(), 0.01).unwrap(),
                    direct_f,
                    "{ctx}"
                );
                assert_eq!(snap.hhh(h.index(), 0.1).unwrap(), direct_h, "{ctx}");
                assert_eq!(
                    snap.sliding_quantile(sq.index(), 0.5).unwrap().to_bits(),
                    direct_sq.to_bits(),
                    "{ctx}"
                );
                assert_eq!(
                    snap.sliding_heavy_hitters(sf.index(), 0.2).unwrap(),
                    direct_sf,
                    "{ctx}"
                );
            }
        }
    }

    #[test]
    fn publication_follows_window_seals_without_flushing() {
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
        let q = eng.register_quantile(0.02);
        let reg = eng.serve();
        // Initial publication: epoch 1, nothing sealed, quantile empty.
        assert_eq!(reg.epoch(), 1);
        let first = reg.latest().expect("initial snapshot");
        assert_eq!(first.windows_sealed(), 0);
        assert_eq!(
            first.quantile(q.index(), 0.5),
            Err(SnapshotError::Empty),
            "no sealed window yet"
        );

        // 1023 elements: still mid-window, no new publication.
        eng.push_all((0..1023).map(|i| i as f32));
        assert_eq!(reg.epoch(), 1);
        // One more element seals window 1 and publishes epoch 2 — without
        // absorbing the (empty) partial buffer.
        eng.push(1023.0);
        assert_eq!(reg.epoch(), 2);
        let snap = reg.latest().expect("published");
        assert_eq!(snap.windows_sealed(), 1);
        assert_eq!(snap.pushed(), 1024);
        assert_eq!(snap.absorbed(), 1024);
        assert!(snap.quantile(q.index(), 0.5).is_ok());

        // A partial tail is visible in pushed() but not absorbed().
        eng.push_all((0..100).map(|i| i as f32));
        eng.publish_now();
        let snap = reg.latest().expect("published");
        assert_eq!(snap.pushed(), 1124);
        assert_eq!(snap.absorbed(), 1024, "publication never flushes");
    }

    #[test]
    fn publish_cadence_batches_seals() {
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(10_000)
            .with_publish_every(4);
        let _ = eng.register_quantile(0.02);
        let reg = eng.serve();
        eng.push_all((0..3 * 1024).map(|i| i as f32));
        assert_eq!(reg.epoch(), 1, "3 seals < cadence 4");
        eng.push_all((0..1024).map(|i| i as f32));
        assert_eq!(reg.epoch(), 2, "4th seal publishes");
    }

    #[test]
    fn snapshot_rejects_wrong_kind_and_unknown_queries() {
        let mut eng = StreamEngine::new(Engine::Host);
        let q = eng.register_quantile(0.02);
        let reg = eng.serve();
        eng.push_all((0..2048).map(|i| i as f32));
        let snap = reg.latest().expect("published");
        assert_eq!(
            snap.heavy_hitters(q.index(), 0.01),
            Err(SnapshotError::WrongKind {
                asked: QueryKind::Frequency,
                actual: QueryKind::Quantile,
            })
        );
        assert_eq!(snap.answer(99, 0.5), Err(SnapshotError::UnknownQuery(99)));
        assert_eq!(snap.kind(q.index()), Some(QueryKind::Quantile));
        assert_eq!(snap.kind(99), None);
        assert_eq!(snap.query_count(), 1);
    }

    #[test]
    fn held_snapshot_survives_later_publications() {
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(10_000);
        let q = eng.register_quantile(0.02);
        let reg = eng.serve();
        eng.push_all((0..1024).map(|i| i as f32));
        let old = reg.latest().expect("epoch 2");
        let old_median = old.quantile(q.index(), 0.5).unwrap();
        eng.push_all((0..4096).map(|i| (i % 10) as f32));
        assert!(reg.epoch() > old.epoch(), "newer snapshots published");
        // The held snapshot still answers, unchanged.
        assert_eq!(old.quantile(q.index(), 0.5).unwrap(), old_median);
        assert!(reg.latest().expect("latest").epoch() > old.epoch());
    }

    #[test]
    fn checkpoint_round_trips_sliding_queries() {
        let data = mixed_stream(20_000, 43);
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(40_000);
        let sq = eng.register_sliding_quantile(0.05, 4_000);
        let sf = eng.register_sliding_frequency(0.05, 4_000);
        eng.push_all(data[..10_000].iter().copied());
        let json = eng.checkpoint();
        let mut restored = StreamEngine::restore(Engine::GpuSim, &json).expect("restore");
        eng.push_all(data[10_000..].iter().copied());
        restored.push_all(data[10_000..].iter().copied());
        assert_eq!(
            eng.sliding_quantile(sq, 0.5).to_bits(),
            restored.sliding_quantile(sq, 0.5).to_bits()
        );
        assert_eq!(
            eng.sliding_heavy_hitters(sf, 0.2),
            restored.sliding_heavy_hitters(sf, 0.2)
        );
    }

    #[test]
    fn serve_is_idempotent_and_observable() {
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(10_000)
            .with_recorder(rec.clone());
        let _ = eng.register_quantile(0.02);
        let reg1 = eng.serve();
        let reg2 = eng.serve();
        assert!(Arc::ptr_eq(&reg1, &reg2), "serve() returns one registry");
        eng.push_all((0..2048).map(|i| i as f32));
        assert_eq!(rec.counter("dsms_snapshots_published"), 3); // initial + 2 seals
        assert_eq!(rec.gauge("dsms_snapshot_epoch").unwrap().current, 3);
    }

    #[test]
    #[should_panic(expected = "not a quantile")]
    fn wrong_query_kind_panics() {
        let mut eng = StreamEngine::new(Engine::Host);
        let f = eng.register_frequency(0.01);
        eng.push_all((0..500).map(|i| (i % 50) as f32));
        let _ = eng.quantile(f, 0.5);
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gsm-dsms-durable-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn durable_opts(dir: &std::path::Path) -> crate::DurableOptions {
        use gsm_durable::{CheckpointPolicy, FsyncPolicy};
        crate::DurableOptions::new(dir)
            .fsync(FsyncPolicy::Off)
            .checkpoint(CheckpointPolicy::EveryWindows(2))
            .records_per_segment(3)
    }

    #[test]
    fn durable_recovery_is_byte_identical_after_clean_kill() {
        let data = mixed_stream(10_000, 91);
        let dir = durable_dir("clean");
        let rec = Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(20_000)
            .with_recorder(rec.clone())
            .with_durability(durable_opts(&dir))
            .expect("durable engine");
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.005);
        eng.push_all(data.iter().copied());
        assert!(rec.counter("wal_appends") > 0, "seals were logged");
        assert!(rec.counter("wal_checkpoints") > 0, "policy checkpointed");
        drop(eng); // simulated kill: no shutdown hook, no final flush

        let rec2 = Recorder::enabled();
        let (mut back, report) =
            StreamEngine::recover_from(Engine::Host, durable_opts(&dir), rec2.clone())
                .expect("recovery");
        assert!(!report.damaged(), "clean log: no tear, no corruption");
        assert_eq!(rec2.counter("dsms_recoveries"), 1);
        // The final partial window (pending, never sealed) is lost by
        // design; everything sealed survives.
        let window = back.window() as u64;
        assert_eq!(
            report.recovered_count,
            (data.len() as u64 / window) * window
        );
        assert_eq!(report.recovered_count, back.count());

        // Byte-identical to an uncrashed run over the recovered prefix
        // (k = 1: checkpoint flushes are no-ops at record boundaries, so a
        // plain engine is a valid reference).
        let mut reference = StreamEngine::new(Engine::Host).with_n_hint(20_000);
        let _ = reference.register_quantile(0.02);
        let _ = reference.register_frequency(0.005);
        reference.push_all(data[..back.count() as usize].iter().copied());
        for phi in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(
                back.quantile(q, phi).to_bits(),
                reference.quantile(q, phi).to_bits(),
                "phi={phi}"
            );
        }
        assert_eq!(
            back.heavy_hitters(f, 0.01),
            reference.heavy_hitters(f, 0.01)
        );

        // And the recovered engine keeps ingesting durably.
        back.push_all(data.iter().copied());
        assert!(rec2.counter("wal_appends") > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_skips_stale_records_without_truncation() {
        // Crash-between-checkpoint-and-truncate, held open permanently:
        // every checkpoint leaves its pre-horizon records in place, and
        // recovery must skip them rather than replay them twice.
        let data = mixed_stream(9_000, 92);
        let dir = durable_dir("stale");
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(18_000)
            .with_durability(durable_opts(&dir).truncate_on_checkpoint(false))
            .expect("durable engine");
        let q = eng.register_quantile(0.02);
        eng.push_all(data.iter().copied());
        drop(eng);

        let (mut back, report) = StreamEngine::recover_from(
            Engine::Host,
            durable_opts(&dir).truncate_on_checkpoint(false),
            Recorder::disabled(),
        )
        .expect("recovery");
        assert!(report.skipped_records > 0, "stale records were present");
        assert_eq!(
            report.checkpoint_wal_seq, report.skipped_records,
            "exactly the records at or below the horizon are skipped"
        );
        let mut reference = StreamEngine::new(Engine::Host).with_n_hint(18_000);
        let _ = reference.register_quantile(0.02);
        reference.push_all(data[..back.count() as usize].iter().copied());
        assert_eq!(
            back.quantile(q, 0.5).to_bits(),
            reference.quantile(q, 0.5).to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_of_empty_dir_is_not_found() {
        let dir = durable_dir("empty");
        let err = match StreamEngine::recover_from(
            Engine::Host,
            durable_opts(&dir),
            Recorder::disabled(),
        ) {
            Ok(_) => panic!("recovery of an empty directory must fail"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durability_refuses_a_dirty_directory() {
        let dir = durable_dir("dirty");
        let mut eng = StreamEngine::new(Engine::Host)
            .with_durability(durable_opts(&dir))
            .expect("durable engine");
        let _ = eng.register_quantile(0.02);
        eng.push_all((0..3000).map(|i| i as f32));
        drop(eng);
        let err = match StreamEngine::new(Engine::Host).with_durability(durable_opts(&dir)) {
            Ok(_) => panic!("a dirty directory must be refused"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_durable_recovery_matches_sharded_durable_reference() {
        // k = 2: checkpoint flushes change shard window chunking, so the
        // reference must be a durable engine with the same cadence; replay
        // reproduces the flush schedule.
        let data = mixed_stream(12_000, 93);
        let dir = durable_dir("shard");
        let ref_dir = durable_dir("shard-ref");
        let mut eng = StreamEngine::new(Engine::Host)
            .with_n_hint(24_000)
            .with_shards(2)
            .with_durability(durable_opts(&dir))
            .expect("durable engine");
        let q = eng.register_quantile(0.02);
        eng.push_all(data.iter().copied());
        drop(eng);

        let (mut back, report) =
            StreamEngine::recover_from(Engine::Host, durable_opts(&dir), Recorder::disabled())
                .expect("recovery");
        assert_eq!(back.shard_count(), 2, "shard layout recovered");

        let mut reference = StreamEngine::new(Engine::Host)
            .with_n_hint(24_000)
            .with_shards(2)
            .with_durability(durable_opts(&ref_dir))
            .expect("reference engine");
        let _ = reference.register_quantile(0.02);
        reference.push_all(data[..report.recovered_count as usize].iter().copied());
        assert_eq!(
            back.quantile(q, 0.5).to_bits(),
            reference.quantile(q, 0.5).to_bits()
        );
        assert_eq!(
            back.quantile(q, 0.99).to_bits(),
            reference.quantile(q, 0.99).to_bits()
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}
