//! Time-breakdown reporting (Figures 4 and 6 of the paper), plus the
//! wall-clock overlap ledger for backends that sort in the background.

use core::time::Duration;

use gsm_model::SimTime;
use gsm_sketch::OpCounter;

/// Cycles charged per summary-maintenance event (a comparison or a tuple
/// move during merge/compress). The summary scans are sequential and
/// branch-friendly, so a handful of cycles per event on the Pentium IV is
/// representative; the value is calibrated so that sorting accounts for
/// 80–90 % of total time in the frequency workload, as the paper measures
/// (§5.1).
pub const SUMMARY_OP_CYCLES: f64 = 6.0;

/// The Pentium IV clock used to price summary operations.
pub const SUMMARY_CLOCK_HZ: f64 = 3.4e9;

/// Converts an operation counter into simulated CPU time.
pub fn price_ops(ops: OpCounter) -> SimTime {
    SimTime::from_secs(ops.total() as f64 * SUMMARY_OP_CYCLES / SUMMARY_CLOCK_HZ)
}

/// Where an estimator's simulated time went — the paper's cost split.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeBreakdown {
    /// Sorting windows (GPU render + overhead, or CPU quicksort).
    pub sort: SimTime,
    /// CPU↔GPU bus transfers (zero on CPU engines).
    pub transfer: SimTime,
    /// Merging window histograms/summaries into the running summary.
    pub merge: SimTime,
    /// Compress / prune passes.
    pub compress: SimTime,
}

impl TimeBreakdown {
    /// Total simulated time.
    pub fn total(&self) -> SimTime {
        self.sort + self.transfer + self.merge + self.compress
    }

    /// Fraction of total time spent in the sort phase alone: the numerator
    /// is [`TimeBreakdown::sort`] only, while the denominator is the full
    /// total (sort + transfer + merge + compress). Transfer time thus
    /// lowers this fraction; it is never counted as sorting.
    pub fn sort_fraction(&self) -> f64 {
        self.sort.fraction_of(self.total())
    }

    /// Fraction spent in the merge phase.
    pub fn merge_fraction(&self) -> f64 {
        self.merge.fraction_of(self.total())
    }

    /// Fraction spent in the compress phase.
    pub fn compress_fraction(&self) -> f64 {
        self.compress.fraction_of(self.total())
    }
}

impl core::fmt::Display for TimeBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "sort={} ({:.1}%) transfer={} merge={} compress={} total={}",
            self.sort,
            100.0 * self.sort_fraction(),
            self.transfer,
            self.merge,
            self.compress,
            self.total()
        )
    }
}

/// Real (wall-clock) time ledger for backends that overlap sorting with
/// ingest — the measured counterpart of the paper's simulated overlap
/// (§5.2.3: the GPU sorts window *k* while the CPU ingests window *k+1*).
///
/// All fields are owned and written by the submitting thread: workers only
/// report how long they were busy, so there is no cross-thread accounting.
#[derive(Clone, Copy, Default, Debug)]
pub struct WallClock {
    /// Background sorting time: each batch's critical path (its longest
    /// lane's wall-clock sort time), summed over batches.
    pub sorting: Duration,
    /// Time the submitting thread actually spent blocked waiting for a
    /// background batch to finish.
    pub blocked: Duration,
}

impl WallClock {
    /// Sort time hidden behind ingest: background sorting the submitting
    /// thread never waited for. Saturates at zero when waiting dominated
    /// (e.g. a single-core host, where overlap cannot pay).
    pub fn hidden(&self) -> Duration {
        self.sorting.saturating_sub(self.blocked)
    }

    /// Accumulates another ledger (fan-in across batches or pipelines).
    pub fn absorb(&mut self, other: WallClock) {
        self.sorting += other.sorting;
        self.blocked += other.blocked;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_hidden_saturates() {
        let mut w = WallClock {
            sorting: Duration::from_millis(30),
            blocked: Duration::from_millis(10),
        };
        assert_eq!(w.hidden(), Duration::from_millis(20));
        w.absorb(WallClock {
            sorting: Duration::ZERO,
            blocked: Duration::from_millis(50),
        });
        assert_eq!(
            w.hidden(),
            Duration::ZERO,
            "waiting beyond sorting saturates"
        );
        assert_eq!(w.sorting, Duration::from_millis(30));
        assert_eq!(w.blocked, Duration::from_millis(60));
    }

    #[test]
    fn totals_and_fractions() {
        let b = TimeBreakdown {
            sort: SimTime::from_millis(80.0),
            transfer: SimTime::from_millis(5.0),
            merge: SimTime::from_millis(10.0),
            compress: SimTime::from_millis(5.0),
        };
        assert!((b.total().as_millis() - 100.0).abs() < 1e-9);
        assert!((b.sort_fraction() - 0.8).abs() < 1e-12);
        assert!((b.merge_fraction() - 0.1).abs() < 1e-12);
        assert!((b.compress_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn pricing_scales_with_ops() {
        let t1 = price_ops(OpCounter {
            comparisons: 1000,
            moves: 0,
        });
        let t2 = price_ops(OpCounter {
            comparisons: 1000,
            moves: 1000,
        });
        assert!((t2.as_secs() - 2.0 * t1.as_secs()).abs() < 1e-15);
        // 3.4e9 / 6 ops per second: a billion ops ≈ 1.76 s.
        let t3 = price_ops(OpCounter {
            comparisons: 1_000_000_000,
            moves: 0,
        });
        assert!((t3.as_secs() - 6e9 / 3.4e9).abs() < 1e-6);
    }

    #[test]
    fn empty_breakdown_displays() {
        let b = TimeBreakdown::default();
        assert_eq!(b.sort_fraction(), 0.0);
        assert!(format!("{b}").contains("total="));
    }
}
