//! Time-based (variable-width) sliding windows (paper §5.3: "These windows
//! could be fixed or variable-sized width").
//!
//! Count-based windows ([`crate::sliding`]) answer over the last `W`
//! *elements*; time-based windows answer over the last `τ` *seconds* — so
//! the population varies with the arrival rate, growing through bursts and
//! shrinking through lulls. The structure is the same per-block deque, but
//! blocks are cut by a time quantum and expire by their newest timestamp.
//!
//! Error model: within the horizon `τ` the per-block summaries carry their
//! usual sampling error; at the boundary, one block of at most `τ/blocks`
//! seconds may be partially expired. With `q = τ / quantum` live blocks the
//! boundary slop is at most a `1/q` fraction of the window's population —
//! callers choose the quantum to taste (default `τ/64`).

use std::collections::VecDeque;

use crate::gk_window::WindowSummary;
use crate::summary::OpCounter;

/// One time block: a summary of the values that arrived in one quantum.
#[derive(serde::Serialize, serde::Deserialize)]
struct TimeBlock {
    /// Newest arrival time in the block.
    newest: f64,
    summary: WindowSummary,
}

/// ε′-approximate quantiles over the elements of the last `horizon`
/// seconds.
///
/// `ε′` here is the per-block sampling error; the time-boundary slop adds
/// at most `1/blocks_per_horizon` of the window population (see module
/// docs).
///
/// ```
/// use gsm_sketch::TimeSlidingQuantile;
///
/// let mut sq = TimeSlidingQuantile::new(0.05, 1.0); // last second
/// for i in 0..5000 {
///     sq.push(i as f64 / 1000.0, (i % 10) as f32); // 1k events/s for 5s
/// }
/// // Only the last ~1000 events are in the window.
/// assert!(sq.covered() <= 1100);
/// let med = sq.query(0.5);
/// assert!((3.0..=6.0).contains(&med));
/// ```
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TimeSlidingQuantile {
    eps: f64,
    horizon: f64,
    quantum: f64,
    deque: VecDeque<TimeBlock>,
    /// Open block being accumulated (sorted on close).
    open: Vec<(f64, f32)>,
    open_started: f64,
    ops: OpCounter,
}

impl TimeSlidingQuantile {
    /// Creates a summary over the trailing `horizon` seconds with 64 blocks
    /// per horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `horizon > 0`.
    pub fn new(eps: f64, horizon: f64) -> Self {
        Self::with_quantum(eps, horizon, horizon / 64.0)
    }

    /// Creates a summary with an explicit block quantum (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`, `horizon > 0`, and
    /// `0 < quantum ≤ horizon`.
    pub fn with_quantum(eps: f64, horizon: f64, quantum: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            quantum > 0.0 && quantum <= horizon,
            "quantum must be in (0, horizon]"
        );
        TimeSlidingQuantile {
            eps,
            horizon,
            quantum,
            deque: VecDeque::new(),
            open: Vec::new(),
            open_started: f64::NEG_INFINITY,
            ops: OpCounter::default(),
        }
    }

    /// The per-block error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The window horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Elements currently covered (live blocks + the open block).
    pub fn covered(&self) -> u64 {
        self.deque.iter().map(|b| b.summary.count()).sum::<u64>() + self.open.len() as u64
    }

    /// Stored entries across blocks (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.deque
            .iter()
            .map(|b| b.summary.entries().len())
            .sum::<usize>()
            + self.open.len()
    }

    /// Pushes one timestamped value. Timestamps must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the latest pushed time (debug builds).
    pub fn push(&mut self, time: f64, value: f32) {
        debug_assert!(value.is_finite(), "values must be finite");
        debug_assert!(
            self.open.last().map(|&(t, _)| time >= t).unwrap_or(true),
            "timestamps must be non-decreasing"
        );
        // Close the open block first if this arrival falls outside its
        // quantum — otherwise a late straggler would trap stale elements in
        // a block whose `newest` timestamp never expires.
        if !self.open.is_empty() && time - self.open_started >= self.quantum {
            self.close_block();
        }
        if self.open.is_empty() {
            self.open_started = time;
        }
        self.open.push((time, value));
        self.expire(time);
    }

    fn close_block(&mut self) {
        if self.open.is_empty() {
            return;
        }
        let newest = self.open.last().expect("non-empty").0;
        let mut values: Vec<f32> = self.open.drain(..).map(|(_, v)| v).collect();
        values.sort_by(f32::total_cmp);
        self.deque.push_back(TimeBlock {
            newest,
            summary: WindowSummary::from_sorted(&values, self.eps),
        });
    }

    fn expire(&mut self, now: f64) {
        while let Some(front) = self.deque.front() {
            if front.newest < now - self.horizon {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// Answers a φ-quantile query over (approximately) the last `horizon`
    /// seconds, as of the latest pushed timestamp.
    ///
    /// # Panics
    ///
    /// Panics if nothing is covered.
    pub fn query(&mut self, phi: f64) -> f32 {
        self.close_block();
        assert!(!self.deque.is_empty(), "cannot query an empty window");
        // Balanced tree merge (same rationale as the count-based variant).
        let mut layer: Vec<WindowSummary> = self.deque.iter().map(|b| b.summary.clone()).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => WindowSummary::merge(a, b, &mut self.ops),
                    [a] => a.clone(),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
        }
        layer[0].query(phi)
    }
}

/// ε-approximate frequencies over the elements of the last `horizon`
/// seconds.
///
/// Same block structure as [`TimeSlidingQuantile`]; each closed block keeps
/// a pruned histogram (entries with more than `⌊ε·len/2⌋` occurrences in
/// the block survive), so a value's undercount is bounded per block and the
/// footprint stays Θ(1/ε) per block.
///
/// ```
/// use gsm_sketch::time_sliding::TimeSlidingFrequency;
///
/// let mut sf = TimeSlidingFrequency::new(0.02, 1.0);
/// for i in 0..5000 {
///     sf.push(i as f64 / 1000.0, (i % 5) as f32); // 1k events/s
/// }
/// // Each value is 20% of the ~1000-event window.
/// let est = sf.estimate(2.0);
/// assert!((150..=260).contains(&est), "{est}");
/// ```
#[derive(serde::Serialize, serde::Deserialize)]
pub struct TimeSlidingFrequency {
    eps: f64,
    horizon: f64,
    quantum: f64,
    deque: VecDeque<FreqTimeBlock>,
    open: Vec<(f64, f32)>,
    open_started: f64,
}

/// One closed frequency block.
#[derive(serde::Serialize, serde::Deserialize)]
struct FreqTimeBlock {
    newest: f64,
    total: u64,
    entries: Vec<(f32, u64)>,
}

impl TimeSlidingFrequency {
    /// Creates a summary over the trailing `horizon` seconds with 64 blocks
    /// per horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1` and `horizon > 0`.
    pub fn new(eps: f64, horizon: f64) -> Self {
        Self::with_quantum(eps, horizon, horizon / 64.0)
    }

    /// Creates a summary with an explicit block quantum (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 1`, `horizon > 0`, and
    /// `0 < quantum ≤ horizon`.
    pub fn with_quantum(eps: f64, horizon: f64, quantum: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(
            quantum > 0.0 && quantum <= horizon,
            "quantum must be in (0, horizon]"
        );
        TimeSlidingFrequency {
            eps,
            horizon,
            quantum,
            deque: VecDeque::new(),
            open: Vec::new(),
            open_started: f64::NEG_INFINITY,
        }
    }

    /// The per-block error bound.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The window horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Elements currently covered.
    pub fn covered(&self) -> u64 {
        self.deque.iter().map(|b| b.total).sum::<u64>() + self.open.len() as u64
    }

    /// Stored histogram entries (memory footprint).
    pub fn entry_count(&self) -> usize {
        self.deque.iter().map(|b| b.entries.len()).sum::<usize>() + self.open.len()
    }

    /// Pushes one timestamped value (timestamps non-decreasing).
    pub fn push(&mut self, time: f64, value: f32) {
        debug_assert!(value.is_finite(), "values must be finite");
        if !self.open.is_empty() && time - self.open_started >= self.quantum {
            self.close_block();
        }
        if self.open.is_empty() {
            self.open_started = time;
        }
        self.open.push((time, value));
        self.expire(time);
    }

    fn close_block(&mut self) {
        if self.open.is_empty() {
            return;
        }
        let newest = self.open.last().expect("non-empty").0;
        let total = self.open.len() as u64;
        let mut values: Vec<f32> = self.open.drain(..).map(|(_, v)| v).collect();
        values.sort_by(f32::total_cmp);
        let drop = ((self.eps * total as f64) / 2.0).floor() as u64;
        let entries: Vec<(f32, u64)> = crate::histogram::histogram(&values)
            .into_iter()
            .filter(|&(_, c)| c > drop)
            .collect();
        self.deque.push_back(FreqTimeBlock {
            newest,
            total,
            entries,
        });
    }

    fn expire(&mut self, now: f64) {
        while let Some(front) = self.deque.front() {
            if front.newest < now - self.horizon {
                self.deque.pop_front();
            } else {
                break;
            }
        }
    }

    /// The estimated frequency of `value` over (approximately) the last
    /// `horizon` seconds, as of the latest pushed timestamp.
    pub fn estimate(&mut self, value: f32) -> u64 {
        self.close_block();
        self.deque
            .iter()
            .map(|b| {
                b.entries
                    .binary_search_by(|e| e.0.total_cmp(&value))
                    .map(|i| b.entries[i].1)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// All values with estimated frequency ≥ `(s − eps) · covered()`,
    /// ascending by value.
    ///
    /// # Panics
    ///
    /// Panics unless `eps < s ≤ 1`.
    pub fn heavy_hitters(&mut self, s: f64) -> Vec<(f32, u64)> {
        assert!(
            s > self.eps && s <= 1.0,
            "support must satisfy eps < s <= 1"
        );
        self.close_block();
        let covered = self.covered() as f64;
        let mut values: Vec<f32> = self
            .deque
            .iter()
            .flat_map(|b| b.entries.iter().map(|&(v, _)| v))
            .collect();
        values.sort_by(f32::total_cmp);
        values.dedup();
        let threshold = (s - self.eps) * covered;
        let mut out = Vec::new();
        for v in values {
            let c = self.estimate(v);
            if c as f64 >= threshold {
                out.push((v, c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactStats;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Events at a steady rate with the given value generator.
    fn feed<F: FnMut(usize) -> f32>(
        sq: &mut TimeSlidingQuantile,
        n: usize,
        rate: f64,
        t0: f64,
        mut value: F,
    ) -> Vec<(f64, f32)> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let t = t0 + i as f64 / rate;
            let v = value(i);
            sq.push(t, v);
            out.push((t, v));
        }
        out
    }

    #[test]
    fn frequency_tracks_recent_horizon() {
        let mut sf = TimeSlidingFrequency::new(0.05, 1.0);
        // Hot value 7.0 for 2 seconds, then gone for 2 seconds.
        for i in 0..4000 {
            sf.push(i as f64 / 2000.0, 7.0);
        }
        assert!(sf.estimate(7.0) >= 1800);
        for i in 0..4000 {
            sf.push(2.0 + i as f64 / 2000.0, (i % 100) as f32 + 100.0);
        }
        assert_eq!(sf.estimate(7.0), 0, "expired value must vanish");
    }

    #[test]
    fn frequency_error_bounded() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut sf = TimeSlidingFrequency::new(0.02, 1.0);
        let mut events: Vec<(f64, f32)> = Vec::new();
        for i in 0..30_000 {
            let t = i as f64 / 10_000.0;
            let v = if rng.random_range(0..4) == 0 {
                rng.random_range(0..8) as f32
            } else {
                rng.random_range(100..10_000) as f32
            };
            sf.push(t, v);
            events.push((t, v));
        }
        let now = events.last().expect("non-empty").0;
        let window: Vec<f32> = events
            .iter()
            .filter(|&&(t, _)| t >= now - 1.0)
            .map(|&(_, v)| v)
            .collect();
        let oracle = ExactStats::new(&window);
        let covered = sf.covered() as f64;
        for v in 0..8 {
            let est = sf.estimate(v as f32) as i64;
            let truth = oracle.frequency(v as f32) as i64;
            // eps per block + one-block boundary slop.
            let bound = (0.02 * covered + covered / 64.0 + 16.0) as i64;
            assert!(
                (est - truth).abs() <= bound,
                "value {v}: est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn frequency_heavy_hitters_surface_hot_values() {
        let mut sf = TimeSlidingFrequency::new(0.01, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..20_000 {
            let t = i as f64 / 20_000.0;
            let v = if rng.random_range(0..10) < 4 {
                rng.random_range(0..4) as f32 // 4 hot values at ~10% each
            } else {
                rng.random_range(100..50_000) as f32
            };
            sf.push(t, v);
        }
        let hh = sf.heavy_hitters(0.05);
        for hot in 0..4 {
            assert!(
                hh.iter().any(|&(v, _)| v == hot as f32),
                "hot {hot} missing: {hh:?}"
            );
        }
    }

    #[test]
    fn tracks_the_recent_horizon() {
        let mut sq = TimeSlidingQuantile::new(0.02, 1.0);
        // Phase 1 (0..2s): values near 0. Phase 2 (2..4s): values near 100.
        let mut rng = StdRng::seed_from_u64(1);
        let _ = feed(&mut sq, 10_000, 5000.0, 0.0, |_| rng.random_range(0.0..1.0));
        let mut rng2 = StdRng::seed_from_u64(2);
        let _ = feed(&mut sq, 10_000, 5000.0, 2.0, |_| {
            rng2.random_range(100.0..101.0)
        });
        assert!(sq.query(0.5) >= 100.0, "old phase must have expired");
    }

    #[test]
    fn error_within_eps_of_time_window() {
        let eps = 0.02;
        let horizon = 1.0;
        let mut sq = TimeSlidingQuantile::new(eps, horizon);
        let mut rng = StdRng::seed_from_u64(3);
        let events = feed(&mut sq, 40_000, 10_000.0, 0.0, |_| {
            rng.random_range(0.0..1.0)
        });
        let now = events.last().expect("non-empty").0;
        let in_window: Vec<f32> = events
            .iter()
            .filter(|&&(t, _)| t >= now - horizon)
            .map(|&(_, v)| v)
            .collect();
        let oracle = ExactStats::new(&in_window);
        for phi in [0.1, 0.5, 0.9] {
            let err = oracle.quantile_rank_error(phi, sq.query(phi));
            // eps sampling + 1/64 boundary slop.
            assert!(err <= eps + 1.0 / 64.0 + 0.005, "phi={phi} err={err}");
        }
    }

    #[test]
    fn population_tracks_arrival_rate() {
        let mut sq = TimeSlidingQuantile::new(0.05, 1.0);
        // Slow phase: 1k/s for 3 seconds.
        let _ = feed(&mut sq, 3000, 1000.0, 0.0, |i| i as f32);
        let slow_pop = sq.covered();
        // Burst: 20k/s for 1 second (starting after the slow phase).
        let _ = feed(&mut sq, 20_000, 20_000.0, 3.0, |i| i as f32);
        let burst_pop = sq.covered();
        assert!(
            burst_pop > 5 * slow_pop,
            "burst population {burst_pop} must dwarf calm {slow_pop}"
        );
        // Window population is bounded by one horizon of the burst rate
        // (plus one quantum of slop).
        assert!(burst_pop <= 21_000, "{burst_pop}");
    }

    #[test]
    fn quiet_period_expires_everything_but_the_last_block() {
        let mut sq = TimeSlidingQuantile::new(0.05, 0.5);
        let _ = feed(&mut sq, 5000, 10_000.0, 0.0, |i| (i % 100) as f32);
        // One straggler long after: everything else expires.
        sq.push(100.0, 55.0);
        assert_eq!(sq.query(0.5), 55.0);
        assert!(
            sq.covered() <= 1 + 5000 / 64 + 80,
            "covered {}",
            sq.covered()
        );
    }

    #[test]
    fn memory_is_bounded_by_blocks_not_stream() {
        let mut sq = TimeSlidingQuantile::with_quantum(0.02, 1.0, 1.0 / 32.0);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = feed(&mut sq, 200_000, 50_000.0, 0.0, |_| {
            rng.random_range(0.0..1.0)
        });
        // 32 live blocks of ~1562 elements, each sampled at eps: far below
        // the 200k stream and below one horizon's population.
        assert!(sq.entry_count() < 60_000, "entries {}", sq.entry_count());
    }
}
