#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
# Run from the repository root (or any subdirectory; cargo finds the
# workspace). CI runs exactly this script (see .github/workflows/ci.yml),
# so passing locally means passing the gate.
set -euo pipefail

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --all --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "tier-1 gate: OK"
