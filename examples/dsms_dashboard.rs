//! A DSMS "dashboard": several continuous queries sharing one GPU
//! co-processor, under overload with adaptive load shedding — the systems
//! scenario the paper opens with (§1).
//!
//! ```text
//! cargo run --release --example dsms_dashboard
//! ```

use gsm::core::{BitPrefixHierarchy, Engine};
use gsm::dsms::{run_at_rate, StreamEngine};
use gsm::stream::ZipfGen;

fn main() {
    let n = 2_000_000usize;
    // Web-tracking style stream: page ids, Zipf popularity.
    let stream: Vec<f32> = ZipfGen::new(99, 4096, 1.1).take(n).collect();

    // One engine, three standing queries.
    let mut eng = StreamEngine::new(Engine::GpuSim).with_n_hint(n as u64);
    let latency_q = eng.register_quantile(0.001);
    let hot_pages = eng.register_frequency(0.0001);
    let hot_sections = eng.register_hhh(0.0001, BitPrefixHierarchy::new(vec![6]));

    // Find the capacity, then drive at twice that.
    let mut probe = StreamEngine::new(Engine::GpuSim).with_n_hint(n as u64);
    let _ = probe.register_quantile(0.001);
    let _ = probe.register_frequency(0.0001);
    let _ = probe.register_hhh(0.0001, BitPrefixHierarchy::new(vec![6]));
    probe.push_all(stream.iter().copied());
    probe.flush();
    let capacity = probe.service_rate();
    println!(
        "engine capacity with 3 standing queries: {:.2} M elements/s (simulated)",
        capacity / 1e6
    );

    let offered = capacity * 2.0;
    println!(
        "offered rate: {:.2} M elements/s (2x overload)\n",
        offered / 1e6
    );
    let report = run_at_rate(&mut eng, stream.iter().copied(), offered);
    println!(
        "shed {:.1}% of {} arrivals; processed {}; backlog {:.0} ms; keep fraction {:.2}",
        100.0 * report.shed_fraction(),
        report.offered,
        report.processed,
        1000.0 * report.lag_seconds.max(0.0),
        report.keep_fraction
    );

    // The dashboard still answers, on the uniformly thinned sub-stream.
    println!("\n-- dashboard --");
    println!("median page id: {}", eng.quantile(latency_q, 0.5));
    println!("p99 page id:    {}", eng.quantile(latency_q, 0.99));
    let hot = eng.heavy_hitters(hot_pages, 0.01);
    println!("pages above 1% of (kept) traffic: {}", hot.len());
    for &(page, count) in hot.iter().take(5) {
        // Uniform shedding scales counts by the keep fraction; rescale.
        let estimated_true = (count as f64 / report.keep_fraction) as u64;
        println!("  page {page:>6}  kept-count {count:>8}  est. true {estimated_true:>8}");
    }
    let sections = eng.hhh(hot_sections, 0.05);
    println!("sections above 5%: {}", sections.len());
    println!("\ntime split: {}", eng.breakdown());
}
