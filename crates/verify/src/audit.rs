//! The ε-guarantee bound auditor.
//!
//! Every estimator in the system ships with a paper contract: quantile
//! answers within `ε·N` ranks (§5.2), frequency estimates that never
//! overestimate and undercount by at most `ε·N` with zero false negatives
//! above the support threshold (§5.1), and summary space inside the
//! `O((1/ε)·log(εN))` envelope. The auditors here certify a *finished*
//! answer set against the exact oracles in [`gsm_sketch::exact`] and return
//! a structured [`AuditReport`] — observed worst case, permitted bound, and
//! headroom per check — rather than a bare pass/fail, so CI artifacts show
//! how close each guarantee runs to its cliff.

use gsm_sketch::exact::ExactStats;
use gsm_sketch::{BitPrefixHierarchy, HhhEntry};

/// One audited contract: an observed worst case against its bound.
#[derive(Clone, Debug, serde::Serialize)]
pub struct AuditCheck {
    /// Stable check identifier, e.g. `quantile.rank_error`.
    pub name: String,
    /// Worst observed value (error, undercount, miss count, entry count…).
    pub observed: f64,
    /// The contract's permitted bound for that value.
    pub bound: f64,
    /// Normalized slack: `(bound − observed) / bound` for positive bounds,
    /// so `1.0` is a perfect answer, `0.0` sits exactly on the bound, and
    /// anything negative is a violation. Zero-bounds (counting checks that
    /// must observe nothing) report `1.0` or `−observed`.
    pub headroom: f64,
    /// Whether the observation respects the bound.
    pub pass: bool,
}

impl AuditCheck {
    fn new(name: &str, observed: f64, bound: f64) -> Self {
        let pass = observed <= bound;
        let headroom = if bound > 0.0 {
            (bound - observed) / bound
        } else if pass {
            1.0
        } else {
            -observed
        };
        AuditCheck {
            name: name.to_string(),
            observed,
            bound,
            headroom,
            pass,
        }
    }
}

/// The structured result of auditing one estimator on one stream.
#[derive(Clone, Debug, serde::Serialize)]
pub struct AuditReport {
    /// Which estimator was audited (e.g. `quantile`, `sliding_frequency`).
    pub estimator: String,
    /// Stream length the answers cover.
    pub n: u64,
    /// The estimator's error bound ε.
    pub eps: f64,
    /// Summary entries held at query time (space usage).
    pub space_entries: u64,
    /// The space envelope the entries were audited against.
    pub space_envelope: f64,
    /// Every audited contract.
    pub checks: Vec<AuditCheck>,
}

impl AuditReport {
    /// Creates an empty report shell; callers append contracts with
    /// [`AuditReport::push_check`]. Public so harnesses auditing *derived*
    /// answers (e.g. shard-merged summaries) can reuse the report format.
    pub fn new(estimator: &str, n: u64, eps: f64, space_entries: u64, space_envelope: f64) -> Self {
        AuditReport {
            estimator: estimator.to_string(),
            n,
            eps,
            space_entries,
            space_envelope,
            checks: Vec::new(),
        }
    }

    /// Records one audited contract: `observed` against its `bound`
    /// (headroom and pass/fail are derived).
    pub fn push_check(&mut self, name: &str, observed: f64, bound: f64) {
        self.checks.push(AuditCheck::new(name, observed, bound));
    }

    fn push(&mut self, name: &str, observed: f64, bound: f64) {
        self.push_check(name, observed, bound);
    }

    fn finish_space(&mut self) {
        self.push(
            "space.entries",
            self.space_entries as f64,
            self.space_envelope,
        );
    }

    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The checks that violated their bound.
    pub fn violations(&self) -> impl Iterator<Item = &AuditCheck> {
        self.checks.iter().filter(|c| !c.pass)
    }

    /// The tightest headroom across all checks (how close the worst
    /// guarantee ran to its cliff; negative means a violation).
    pub fn worst_headroom(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| c.headroom)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The implementation-derived space envelope for the streaming quantile
/// summary (an exponential histogram of pruned GK04 buckets): every live
/// bucket holds at most `prune_b + 2` entries and at most one bucket lives
/// per level — the concrete constant behind the paper's
/// `O((1/ε)·log(εN))`.
pub fn quantile_space_envelope(eps: f64, window: usize, n: u64) -> f64 {
    let windows = (n as f64 / window as f64).max(1.0);
    let max_levels = (windows.log2().ceil()).max(1.0) + 1.0;
    let delta = eps / (2.0 * max_levels);
    let prune_b = (1.0 / (2.0 * delta)).ceil();
    (max_levels + 1.0) * (prune_b + 2.0)
}

/// The lossy-counting space envelope `O((1/ε)·log(εN))` with the
/// implementation's constant: `(1/ε)·(log₂(εN + 2) + 2) · 2`.
pub fn frequency_space_envelope(eps: f64, n: u64) -> f64 {
    (1.0 / eps) * ((eps * n as f64 + 2.0).log2().max(1.0) + 2.0) * 2.0
}

/// Audits φ-quantile answers against the exact oracle: rank error within
/// `ε + 2/N` (the `2/N` covers the two rank-quantization boundaries) and
/// summary space inside [`quantile_space_envelope`].
///
/// # Panics
///
/// Panics if `data` is empty (the oracle needs at least one value).
pub fn audit_quantile(
    data: &[f32],
    eps: f64,
    window: usize,
    answers: &[(f64, f32)],
    space_entries: usize,
) -> AuditReport {
    let oracle = ExactStats::new(data);
    let n = oracle.len() as u64;
    let mut report = AuditReport::new(
        "quantile",
        n,
        eps,
        space_entries as u64,
        quantile_space_envelope(eps, window, n),
    );
    let bound = eps + 2.0 / n as f64;
    let mut worst = 0.0f64;
    for &(phi, value) in answers {
        worst = worst.max(oracle.quantile_rank_error(phi, value));
    }
    report.push("quantile.rank_error", worst, bound);
    report.finish_space();
    report
}

/// Audits frequency estimates and a heavy-hitters answer against the exact
/// oracle: estimates never overestimate, undercount by at most `⌈εN⌉`, the
/// heavy-hitters answer has zero false negatives at support `s` and nothing
/// below `(s − ε)N`, and the summary sits inside
/// [`frequency_space_envelope`].
///
/// `estimates` pairs each probed value with the estimator's answer; `hh` is
/// the estimator's `heavy_hitters(s)` output.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn audit_frequency(
    data: &[f32],
    eps: f64,
    support: f64,
    estimates: &[(f32, u64)],
    hh: &[(f32, u64)],
    space_entries: usize,
) -> AuditReport {
    let oracle = ExactStats::new(data);
    let n = oracle.len() as u64;
    let mut report = AuditReport::new(
        "frequency",
        n,
        eps,
        space_entries as u64,
        frequency_space_envelope(eps, n),
    );

    let mut worst_over = i64::MIN;
    let mut worst_under = 0i64;
    for &(value, est) in estimates {
        let truth = oracle.frequency(value) as i64;
        worst_over = worst_over.max(est as i64 - truth);
        worst_under = worst_under.max(truth - est as i64);
    }
    report.push("frequency.no_overestimate", worst_over.max(0) as f64, 0.0);
    report.push(
        "frequency.undercount",
        worst_under as f64,
        (eps * n as f64).ceil(),
    );

    // Zero false negatives: every value at or above s·N must be reported.
    let threshold = (support * n as f64).ceil() as u64;
    let missing = oracle
        .heavy_hitters(threshold.max(1))
        .iter()
        .filter(|(v, _)| !hh.iter().any(|(rv, _)| rv.to_bits() == v.to_bits()))
        .count();
    report.push("frequency.no_false_negatives", missing as f64, 0.0);

    // Nothing below (s − ε)·N sneaks in.
    let floor = (support - eps) * n as f64;
    let spurious = hh
        .iter()
        .filter(|&&(v, _)| (oracle.frequency(v) as f64) < floor.floor())
        .count();
    report.push("frequency.no_false_positives", spurious as f64, 0.0);
    report.finish_space();
    report
}

/// Audits a hierarchical heavy-hitters answer: per reported prefix the raw
/// estimate never exceeds the prefix's exact frequency and undercounts by
/// at most `⌈εN⌉`, every *leaf* at or above support is reported (the lossy
/// no-false-negatives guarantee, which discounting never weakens at level
/// 0), and space stays inside one lossy envelope per level.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn audit_hhh(
    data: &[f32],
    eps: f64,
    support: f64,
    hierarchy: &BitPrefixHierarchy,
    entries: &[HhhEntry],
    space_entries: usize,
) -> AuditReport {
    let n = data.len() as u64;
    let levels = hierarchy.levels();
    let mut report = AuditReport::new(
        "hhh",
        n,
        eps,
        space_entries as u64,
        levels as f64 * frequency_space_envelope(eps, n),
    );

    // Exact per-level oracles over the ancestor-mapped stream.
    let oracles: Vec<ExactStats> = (0..levels)
        .map(|level| {
            let mapped: Vec<f32> = data.iter().map(|&v| hierarchy.ancestor(v, level)).collect();
            ExactStats::new(&mapped)
        })
        .collect();

    let mut worst_over = 0i64;
    let mut worst_under = 0i64;
    for e in entries {
        let truth = oracles[e.level].frequency(e.prefix) as i64;
        worst_over = worst_over.max(e.raw_count as i64 - truth);
        worst_under = worst_under.max(truth - e.raw_count as i64);
    }
    report.push("hhh.raw_no_overestimate", worst_over as f64, 0.0);
    report.push(
        "hhh.raw_undercount",
        worst_under as f64,
        (eps * n as f64).ceil(),
    );

    // Leaf-level no false negatives: a leaf has no descendants to discount,
    // so lossy counting's guarantee applies unchanged.
    let threshold = (support * n as f64).ceil() as u64;
    let missing = oracles[0]
        .heavy_hitters(threshold.max(1))
        .iter()
        .filter(|(v, _)| {
            !entries
                .iter()
                .any(|e| e.level == 0 && e.prefix.to_bits() == v.to_bits())
        })
        .count();
    report.push("hhh.leaf_no_false_negatives", missing as f64, 0.0);
    report.finish_space();
    report
}

/// Audits sliding-window quantile answers against the exact oracle over the
/// `covered` most recent elements (exactly the population the live blocks
/// summarize): rank error within `ε + 2/covered`, space within the
/// per-block sampling envelope.
///
/// # Panics
///
/// Panics if `covered` is zero or exceeds `data.len()`.
pub fn audit_sliding_quantile(
    data: &[f32],
    eps: f64,
    width: usize,
    covered: u64,
    answers: &[(f64, f32)],
    space_entries: usize,
) -> AuditReport {
    assert!(covered > 0 && covered as usize <= data.len(), "bad covered");
    let suffix = &data[data.len() - covered as usize..];
    let oracle = ExactStats::new(suffix);
    // Per-block entries: a block of b = ⌈εW/2⌉ elements sampled at ε/2
    // holds at most 2/ε + 2 entries; ⌈W/b⌉ + 1 blocks live at once.
    let block = ((eps * width as f64) / 2.0).ceil().max(1.0);
    let blocks = (width as f64 / block).ceil() + 1.0;
    let envelope = blocks * (2.0 / eps + 3.0);
    let mut report = AuditReport::new(
        "sliding_quantile",
        covered,
        eps,
        space_entries as u64,
        envelope,
    );
    let bound = eps + 2.0 / covered as f64;
    let mut worst = 0.0f64;
    for &(phi, value) in answers {
        worst = worst.max(oracle.quantile_rank_error(phi, value));
    }
    report.push("sliding_quantile.rank_error", worst, bound);
    report.finish_space();
    report
}

/// Audits sliding-window frequency answers against the exact oracle over
/// the `covered` most recent elements: estimates never overestimate the
/// covered suffix, undercount by at most `⌈ε·covered⌉`, heavy hitters have
/// no false negatives for values at or above `(s + ε)·covered`, and the
/// pruned histograms respect their per-block entry cap.
///
/// # Panics
///
/// Panics if `covered` is zero or exceeds `data.len()`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list; a config struct would obscure which bound each input feeds
pub fn audit_sliding_frequency(
    data: &[f32],
    eps: f64,
    width: usize,
    covered: u64,
    support: f64,
    estimates: &[(f32, u64)],
    hh: &[(f32, u64)],
    space_entries: usize,
) -> AuditReport {
    assert!(covered > 0 && covered as usize <= data.len(), "bad covered");
    let suffix = &data[data.len() - covered as usize..];
    let oracle = ExactStats::new(suffix);
    // Entries with count > drop each consume > drop elements, so one block
    // of b elements keeps at most b/(drop+1) entries.
    let block = ((eps * width as f64) / 4.0).ceil().max(1.0);
    let drop = ((eps * block) / 2.0).floor();
    let blocks = (width as f64 / block).ceil() + 1.0;
    let envelope = blocks * (block / (drop + 1.0)).ceil();
    let mut report = AuditReport::new(
        "sliding_frequency",
        covered,
        eps,
        space_entries as u64,
        envelope,
    );

    let mut worst_over = 0i64;
    let mut worst_under = 0i64;
    for &(value, est) in estimates {
        let truth = oracle.frequency(value) as i64;
        worst_over = worst_over.max(est as i64 - truth);
        worst_under = worst_under.max(truth - est as i64);
    }
    report.push("sliding_frequency.no_overestimate", worst_over as f64, 0.0);
    report.push(
        "sliding_frequency.undercount",
        worst_under as f64,
        (eps * covered as f64).ceil(),
    );

    // No false negatives with one ε of threshold slack: a value holding
    // (s + ε)·covered of the suffix estimates to ≥ s·covered ≥ the sketch's
    // (s − ε)·width reporting threshold for any covered ≥ width.
    let threshold = ((support + eps) * covered as f64).ceil() as u64;
    let missing = oracle
        .heavy_hitters(threshold.max(1))
        .iter()
        .filter(|(v, _)| !hh.iter().any(|(rv, _)| rv.to_bits() == v.to_bits()))
        .count();
    report.push("sliding_frequency.no_false_negatives", missing as f64, 0.0);
    report.finish_space();
    report
}

/// Audits shard-merged φ-quantile answers.
///
/// Merging GK-bracket summaries adds no rank error (ε_merge ≤ max εᵢ), so
/// the merged answers are held to the *same* `ε + 2/N` rank bound as one
/// summary — plus two sharding-specific contracts: the summary's own
/// surfaced error (`tracked_eps`) must stay within the registered ε, and
/// space may grow to at most `shards ×` one summary's envelope (each shard
/// keeps its own level set until query time).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn audit_sharded_quantile(
    data: &[f32],
    eps: f64,
    window: usize,
    shards: usize,
    surfaced_eps: f64,
    answers: &[(f64, f32)],
    space_entries: usize,
) -> AuditReport {
    let oracle = ExactStats::new(data);
    let n = oracle.len() as u64;
    let mut report = AuditReport::new(
        "sharded_quantile",
        n,
        eps,
        space_entries as u64,
        shards as f64 * quantile_space_envelope(eps, window, n),
    );
    let bound = eps + 2.0 / n as f64;
    let mut worst = 0.0f64;
    for &(phi, value) in answers {
        worst = worst.max(oracle.quantile_rank_error(phi, value));
    }
    report.push("sharded_quantile.rank_error", worst, bound);
    report.push("sharded_quantile.surfaced_eps", surfaced_eps, eps);
    report.finish_space();
    report
}

/// Audits shard-merged frequency answers.
///
/// Merged counts over disjoint partitions stay under-estimates (no
/// overestimate, bound 0) and undercount by at most the merged summary's
/// own surfaced bound (`undercount_bound`, the sum of shard bucket
/// indices), which in turn must sit within the analytic
/// `⌈εN⌉ + (shards − 1)` additive envelope. Heavy hitters keep zero false
/// negatives, and space may grow to `shards ×` one summary's envelope.
///
/// # Panics
///
/// Panics if `data` is empty.
#[allow(clippy::too_many_arguments)] // mirrors audit_frequency plus the two shard-surfaced inputs
pub fn audit_sharded_frequency(
    data: &[f32],
    eps: f64,
    support: f64,
    shards: usize,
    surfaced_bound: u64,
    estimates: &[(f32, u64)],
    hh: &[(f32, u64)],
    space_entries: usize,
) -> AuditReport {
    let oracle = ExactStats::new(data);
    let n = oracle.len() as u64;
    let mut report = AuditReport::new(
        "sharded_frequency",
        n,
        eps,
        space_entries as u64,
        shards as f64 * frequency_space_envelope(eps, n),
    );

    let mut worst_over = i64::MIN;
    let mut worst_under = 0i64;
    for &(value, est) in estimates {
        let truth = oracle.frequency(value) as i64;
        worst_over = worst_over.max(est as i64 - truth);
        worst_under = worst_under.max(truth - est as i64);
    }
    report.push(
        "sharded_frequency.no_overestimate",
        worst_over.max(0) as f64,
        0.0,
    );
    report.push(
        "sharded_frequency.undercount",
        worst_under as f64,
        surfaced_bound as f64,
    );
    report.push(
        "sharded_frequency.surfaced_bound",
        surfaced_bound as f64,
        (eps * n as f64).ceil() + (shards as f64 - 1.0),
    );

    let threshold = (support * n as f64).ceil() as u64;
    let missing = oracle
        .heavy_hitters(threshold.max(1))
        .iter()
        .filter(|(v, _)| !hh.iter().any(|(rv, _)| rv.to_bits() == v.to_bits()))
        .count();
    report.push("sharded_frequency.no_false_negatives", missing as f64, 0.0);
    report.finish_space();
    report
}

/// Audits a shard-merged hierarchical heavy-hitters answer: per-prefix raw
/// counts never overestimate and undercount within the merged summary's
/// surfaced bound (itself inside `⌈εN⌉ + shards − 1`), leaves at or above
/// support are never missed, and space stays inside `shards × levels ×`
/// one lossy envelope.
///
/// # Panics
///
/// Panics if `data` is empty.
#[allow(clippy::too_many_arguments)] // mirrors audit_hhh plus the two shard-surfaced inputs
pub fn audit_sharded_hhh(
    data: &[f32],
    eps: f64,
    support: f64,
    hierarchy: &BitPrefixHierarchy,
    shards: usize,
    surfaced_bound: u64,
    entries: &[HhhEntry],
    space_entries: usize,
) -> AuditReport {
    let n = data.len() as u64;
    let levels = hierarchy.levels();
    let mut report = AuditReport::new(
        "sharded_hhh",
        n,
        eps,
        space_entries as u64,
        shards as f64 * levels as f64 * frequency_space_envelope(eps, n),
    );

    let oracles: Vec<ExactStats> = (0..levels)
        .map(|level| {
            let mapped: Vec<f32> = data.iter().map(|&v| hierarchy.ancestor(v, level)).collect();
            ExactStats::new(&mapped)
        })
        .collect();

    let mut worst_over = 0i64;
    let mut worst_under = 0i64;
    for e in entries {
        let truth = oracles[e.level].frequency(e.prefix) as i64;
        worst_over = worst_over.max(e.raw_count as i64 - truth);
        worst_under = worst_under.max(truth - e.raw_count as i64);
    }
    report.push("sharded_hhh.raw_no_overestimate", worst_over as f64, 0.0);
    report.push(
        "sharded_hhh.raw_undercount",
        worst_under as f64,
        surfaced_bound as f64,
    );
    report.push(
        "sharded_hhh.surfaced_bound",
        surfaced_bound as f64,
        (eps * n as f64).ceil() + (shards as f64 - 1.0),
    );

    let threshold = (support * n as f64).ceil() as u64;
    let missing = oracles[0]
        .heavy_hitters(threshold.max(1))
        .iter()
        .filter(|(v, _)| {
            !entries
                .iter()
                .any(|e| e.level == 0 && e.prefix.to_bits() == v.to_bits())
        })
        .count();
    report.push("sharded_hhh.leaf_no_false_negatives", missing as f64, 0.0);
    report.finish_space();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_quantile_answers_pass_with_headroom() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let answers = [(0.5, 500.0f32), (0.9, 900.0f32)];
        let report = audit_quantile(&data, 0.02, 100, &answers, 50);
        assert!(report.passed(), "{:?}", report.checks);
        assert!(report.worst_headroom() > 0.0);
    }

    #[test]
    fn bad_quantile_answer_is_flagged() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let answers = [(0.5, 900.0f32)]; // 400 ranks off, eps allows 20
        let report = audit_quantile(&data, 0.02, 100, &answers, 50);
        assert!(!report.passed());
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "quantile.rank_error");
        assert!(v[0].headroom < 0.0);
    }

    #[test]
    fn frequency_overestimate_is_flagged() {
        let data = vec![1.0f32; 100];
        // Claim 2.0 appears 5 times: an overestimate (truth 0).
        let report = audit_frequency(&data, 0.05, 0.5, &[(2.0, 5)], &[(1.0, 100)], 1);
        assert!(!report.passed());
        assert!(report
            .violations()
            .any(|c| c.name == "frequency.no_overestimate"));
    }

    #[test]
    fn frequency_false_negative_is_flagged() {
        let data = vec![1.0f32; 100];
        // 1.0 is 100% of the stream but missing from the answer.
        let report = audit_frequency(&data, 0.05, 0.5, &[(1.0, 98)], &[], 1);
        assert!(report
            .violations()
            .any(|c| c.name == "frequency.no_false_negatives"));
    }

    #[test]
    fn space_blowup_is_flagged() {
        let data: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let report = audit_quantile(&data, 0.02, 100, &[(0.5, 500.0)], 1_000_000);
        assert!(report.violations().any(|c| c.name == "space.entries"));
    }

    #[test]
    fn sliding_audits_use_the_covered_suffix() {
        // Stream of 0s then 1s; covered window is all 1s.
        let mut data = vec![0.0f32; 500];
        data.extend(vec![1.0f32; 500]);
        let report = audit_sliding_quantile(&data, 0.05, 500, 500, &[(0.5, 1.0)], 100);
        assert!(report.passed(), "{:?}", report.checks);
        // An answer from the expired prefix must fail.
        let report = audit_sliding_quantile(&data, 0.05, 500, 500, &[(0.5, 0.0)], 100);
        assert!(!report.passed());
    }

    #[test]
    fn report_serializes_to_json() {
        let data = vec![1.0f32; 10];
        let report = audit_frequency(&data, 0.2, 0.5, &[(1.0, 10)], &[(1.0, 10)], 1);
        let json = serde_json::to_string(&report).expect("serialize");
        assert!(json.contains("\"frequency.undercount\""));
        assert!(json.contains("\"headroom\""));
    }
}
