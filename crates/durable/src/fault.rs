//! Deterministic fault injection for the recovery gate.
//!
//! A [`FaultPlan`] is a seed; everything it does — which fault a given
//! run draws, which record a mutation targets, which bit flips — derives
//! from splitmix64 over that seed, so a failing cell in the CI fault
//! matrix reproduces exactly from its logged `(seed, salt)` pair.
//!
//! Three faults mutate the on-disk log after a simulated crash:
//! torn-final-record (the tail of the last record vanishes),
//! truncated-segment (a mid-log segment is cut short, orphaning later
//! records), and bit-flip-in-payload (silent media corruption the CRC
//! must catch). The fourth, crash-between-checkpoint-and-truncate, is a
//! *timing* fault, not a disk mutation: the engine is configured to skip
//! WAL truncation after checkpointing, leaving stale segments below the
//! horizon that recovery must skip rather than re-apply.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::wal::{scan, RecordLoc};
use crate::SplitMix64;

/// Header bytes (magic + seq + len) before a record's payload — mirrors
/// the layout in [`crate::wal`].
const HEADER_BYTES: u64 = 16;

/// One member of the fault taxonomy the recovery gate exercises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// The final record loses its tail, as a crash mid-append would leave
    /// it. Recovery must keep the valid prefix and flag a torn tail.
    TornFinalRecord,
    /// A mid-log segment is cut short; records after the cut (in that
    /// segment and beyond) become unreachable. Recovery must stop at the
    /// last valid record and report corruption.
    TruncatedSegment,
    /// One payload bit flips in place. The record's CRC must catch it;
    /// the flipped window must never be applied.
    BitFlipInPayload,
    /// The process dies after writing a checkpoint but before truncating
    /// the WAL below it. No disk mutation — the engine under test runs
    /// with truncation disabled, and recovery must *skip* the stale
    /// records below the checkpoint horizon instead of replaying them
    /// twice.
    CrashBetweenCheckpointAndTruncate,
}

impl Fault {
    /// Every fault, in schedule order.
    pub const ALL: [Fault; 4] = [
        Fault::TornFinalRecord,
        Fault::TruncatedSegment,
        Fault::BitFlipInPayload,
        Fault::CrashBetweenCheckpointAndTruncate,
    ];

    /// Stable snake_case label for reports and CI artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Fault::TornFinalRecord => "torn_final_record",
            Fault::TruncatedSegment => "truncated_segment",
            Fault::BitFlipInPayload => "bit_flip_in_payload",
            Fault::CrashBetweenCheckpointAndTruncate => "crash_between_checkpoint_and_truncate",
        }
    }

    /// Parses a label produced by [`Fault::name`].
    pub fn from_name(name: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Whether this fault physically mutates the log directory (the
    /// alternative is a pure timing fault configured at runtime).
    pub fn mutates_disk(self) -> bool {
        !matches!(self, Fault::CrashBetweenCheckpointAndTruncate)
    }
}

/// What an injection actually did, for reports and failure reproduction.
#[derive(Clone, Debug)]
pub struct InjectionReport {
    /// [`Fault::name`] of the injected fault.
    pub fault: &'static str,
    /// Whether any on-disk byte changed.
    pub mutated: bool,
    /// The first sequence number whose record is damaged or unreachable,
    /// if the fault targets one.
    pub target_seq: Option<u64>,
    /// Human-readable description of the exact mutation.
    pub detail: String,
}

/// A seeded, deterministic schedule of crash-time faults.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// Creates a plan from a seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The plan's seed, for logging failing cells.
    pub fn seed(self) -> u64 {
        self.seed
    }

    /// A deterministic schedule of `len` faults drawn from the taxonomy.
    /// The first four entries cover all four faults (shuffled); the rest
    /// are uniform draws, so any schedule of length >= 4 exercises the
    /// whole taxonomy.
    pub fn schedule(self, len: usize) -> Vec<Fault> {
        let mut rng = SplitMix64::new(self.seed);
        let mut head = Fault::ALL.to_vec();
        // Fisher–Yates on the guaranteed-coverage prefix.
        for i in (1..head.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            head.swap(i, j);
        }
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            if out.len() < head.len() {
                out.push(head[out.len()]);
            } else {
                out.push(Fault::ALL[rng.below(Fault::ALL.len() as u64) as usize]);
            }
        }
        out
    }

    /// Applies `fault` to the WAL in `dir`, deterministically under
    /// `self.seed ^ salt` (salt distinguishes cells sharing one plan).
    /// Returns what was done. [`Fault::CrashBetweenCheckpointAndTruncate`]
    /// never mutates disk — its report explains the runtime configuration
    /// the caller must use instead.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from scanning or mutating segment files.
    pub fn inject(self, dir: &Path, fault: Fault, salt: u64) -> std::io::Result<InjectionReport> {
        let mut rng = SplitMix64::new(self.seed ^ salt);
        let pre = scan(dir)?;
        let records = &pre.records;
        if !fault.mutates_disk() {
            return Ok(InjectionReport {
                fault: fault.name(),
                mutated: false,
                target_seq: None,
                detail: "timing fault: run the engine with truncate_on_checkpoint disabled; \
                         recovery must skip stale records below the checkpoint horizon"
                    .to_string(),
            });
        }
        if records.is_empty() {
            return Ok(InjectionReport {
                fault: fault.name(),
                mutated: false,
                target_seq: None,
                detail: "log empty; nothing to damage".to_string(),
            });
        }
        match fault {
            Fault::TornFinalRecord => {
                let victim = records.last().expect("non-empty");
                // Cut strictly inside the record: keep >= 1 byte of it so
                // the tear is visible, lose >= 1 byte so it is torn.
                let keep = 1 + rng.below(victim.len - 1);
                let cut_at = victim.offset + keep;
                OpenOptions::new()
                    .write(true)
                    .open(&victim.path)?
                    .set_len(cut_at)?;
                Ok(InjectionReport {
                    fault: fault.name(),
                    mutated: true,
                    target_seq: Some(victim.seq),
                    detail: format!(
                        "truncated {} to {cut_at} bytes, tearing record seq {} ({} of {} bytes kept)",
                        file_name(victim),
                        victim.seq,
                        keep,
                        victim.len
                    ),
                })
            }
            Fault::TruncatedSegment => {
                // Cut a mid-log record short; everything from it on is
                // unreachable. Midpoint biases toward interesting cases
                // where a real prefix survives. At least one byte of the
                // victim record stays: a cut exactly on a record boundary
                // is indistinguishable from a log that simply ended there,
                // which is the torn-tail fault's territory, not a
                // detectable truncation.
                let idx = records.len() / 2;
                let victim = &records[idx];
                let keep = 1 + rng.below(victim.len.min(HEADER_BYTES) - 1);
                OpenOptions::new()
                    .write(true)
                    .open(&victim.path)?
                    .set_len(victim.offset + keep)?;
                Ok(InjectionReport {
                    fault: fault.name(),
                    mutated: true,
                    target_seq: Some(victim.seq),
                    detail: format!(
                        "truncated {} at record seq {} (+{keep} bytes); records {}..={} unreachable",
                        file_name(victim),
                        victim.seq,
                        victim.seq,
                        records.last().expect("non-empty").seq
                    ),
                })
            }
            Fault::BitFlipInPayload => {
                // Never the first record: flipping it can empty the whole
                // recovered prefix, which tests nothing about detection.
                let idx = if records.len() == 1 {
                    0
                } else {
                    1 + rng.below(records.len() as u64 - 1) as usize
                };
                let victim = &records[idx];
                let payload_bytes = (victim.payload.len() * 4) as u64;
                let byte_off = victim.offset + HEADER_BYTES + rng.below(payload_bytes.max(1));
                let bit = rng.below(8) as u8;
                let mut f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&victim.path)?;
                f.seek(SeekFrom::Start(byte_off))?;
                let mut b = [0u8; 1];
                f.read_exact(&mut b)?;
                b[0] ^= 1 << bit;
                f.seek(SeekFrom::Start(byte_off))?;
                f.write_all(&b)?;
                f.sync_data()?;
                Ok(InjectionReport {
                    fault: fault.name(),
                    mutated: true,
                    target_seq: Some(victim.seq),
                    detail: format!(
                        "flipped bit {bit} of byte {byte_off} in {} (payload of record seq {})",
                        file_name(victim),
                        victim.seq
                    ),
                })
            }
            Fault::CrashBetweenCheckpointAndTruncate => unreachable!("handled above"),
        }
    }
}

fn file_name(rec: &RecordLoc) -> String {
    rec.path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| rec.path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{FsyncPolicy, Wal, WalOptions};
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "gsm-fault-test-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn build_log(dir: &Path, records: u64) {
        let mut wal = Wal::create(
            dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                records_per_segment: 3,
            },
        )
        .unwrap();
        for seq in 1..=records {
            let payload: Vec<f32> = (0..8).map(|i| (seq * 100 + i) as f32).collect();
            wal.append(seq, &payload).unwrap();
        }
    }

    #[test]
    fn schedule_is_deterministic_and_covers_taxonomy() {
        let plan = FaultPlan::new(0xDEAD);
        let a = plan.schedule(10);
        let b = plan.schedule(10);
        assert_eq!(a, b);
        for fault in Fault::ALL {
            assert!(
                a[..4].contains(&fault),
                "{} missing from prefix",
                fault.name()
            );
        }
        assert_ne!(a, FaultPlan::new(0xBEEF).schedule(10));
    }

    #[test]
    fn name_round_trips() {
        for fault in Fault::ALL {
            assert_eq!(Fault::from_name(fault.name()), Some(fault));
        }
        assert_eq!(Fault::from_name("nonsense"), None);
    }

    #[test]
    fn torn_injection_is_detected_by_scan() {
        let dir = tmp("torn");
        build_log(&dir, 7);
        let report = FaultPlan::new(1)
            .inject(&dir, Fault::TornFinalRecord, 5)
            .unwrap();
        assert!(report.mutated);
        assert_eq!(report.target_seq, Some(7));
        let result = scan(&dir).unwrap();
        assert_eq!(result.last_seq(), 6);
        assert!(result.torn_tail || result.corruption.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_segment_injection_is_detected() {
        let dir = tmp("trunc");
        build_log(&dir, 9);
        let report = FaultPlan::new(2)
            .inject(&dir, Fault::TruncatedSegment, 5)
            .unwrap();
        assert!(report.mutated);
        let target = report.target_seq.unwrap();
        let result = scan(&dir).unwrap();
        assert!(result.last_seq() < target);
        assert!(result.torn_tail || result.corruption.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_injection_is_detected() {
        let dir = tmp("flip");
        build_log(&dir, 6);
        let report = FaultPlan::new(3)
            .inject(&dir, Fault::BitFlipInPayload, 5)
            .unwrap();
        assert!(report.mutated);
        let target = report.target_seq.unwrap();
        assert!(target > 1, "never flips the first record");
        let result = scan(&dir).unwrap();
        assert!(result.last_seq() < target);
        assert!(result
            .corruption
            .as_deref()
            .is_some_and(|m| m.contains("CRC mismatch")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timing_fault_never_touches_disk() {
        let dir = tmp("timing");
        build_log(&dir, 4);
        let before = scan(&dir).unwrap();
        let report = FaultPlan::new(4)
            .inject(&dir, Fault::CrashBetweenCheckpointAndTruncate, 5)
            .unwrap();
        assert!(!report.mutated);
        let after = scan(&dir).unwrap();
        assert_eq!(after.records.len(), before.records.len());
        assert!(after.corruption.is_none() && !after.torn_tail);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injection_is_deterministic_per_seed_and_salt() {
        let dir_a = tmp("det-a");
        let dir_b = tmp("det-b");
        build_log(&dir_a, 8);
        build_log(&dir_b, 8);
        let ra = FaultPlan::new(99)
            .inject(&dir_a, Fault::BitFlipInPayload, 7)
            .unwrap();
        let rb = FaultPlan::new(99)
            .inject(&dir_b, Fault::BitFlipInPayload, 7)
            .unwrap();
        // Same seed/salt on identical logs produces the identical mutation.
        assert_eq!(ra.detail, rb.detail);
        assert_eq!(ra.target_seq, rb.target_seq);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
