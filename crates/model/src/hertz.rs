use core::fmt;

use crate::{Cycles, SimTime};

/// A clock frequency.
///
/// Used for GPU core clocks, GPU memory clocks, and CPU core clocks in the
/// calibrated device presets.
///
/// ```
/// use gsm_model::{Cycles, Hertz};
///
/// let core = Hertz::from_mhz(400.0); // GeForce 6800 Ultra core clock
/// let t = core.time_for(Cycles::new(400_000_000));
/// assert!((t.as_secs() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from raw hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive.
    #[inline]
    pub fn new(hz: f64) -> Self {
        assert!(hz > 0.0, "clock frequency must be positive: {hz}");
        Hertz(hz)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// The frequency in hertz.
    #[inline]
    pub fn as_hz(self) -> f64 {
        self.0
    }

    /// The frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// The duration of one clock period.
    #[inline]
    pub fn period(self) -> SimTime {
        SimTime::from_secs(1.0 / self.0)
    }

    /// Converts a cycle count at this clock into simulated time.
    #[inline]
    pub fn time_for(self, cycles: Cycles) -> SimTime {
        SimTime::from_secs(cycles.get() as f64 / self.0)
    }

    /// Converts a fractional cycle count at this clock into simulated time.
    ///
    /// Throughput models often charge fractional cycles per item (e.g. 1/16
    /// of a cycle per fragment across 16 pipes).
    #[inline]
    pub fn time_for_f64(self, cycles: f64) -> SimTime {
        SimTime::from_secs(cycles.max(0.0) / self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} GHz", self.0 * 1e-9)
        } else {
            write!(f, "{:.0} MHz", self.0 * 1e-6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Hertz::from_mhz(400.0).as_hz(), 4e8);
        assert_eq!(Hertz::from_ghz(3.4).as_hz(), 3.4e9);
        assert!((Hertz::from_ghz(3.4).as_ghz() - 3.4).abs() < 1e-12);
    }

    #[test]
    fn period_is_reciprocal() {
        let c = Hertz::from_mhz(400.0);
        assert!((c.period().as_secs() - 2.5e-9).abs() < 1e-18);
    }

    #[test]
    fn cycles_to_time() {
        let c = Hertz::from_ghz(1.0);
        assert!((c.time_for(Cycles::new(1_000)).as_micros() - 1.0).abs() < 1e-12);
        assert!((c.time_for_f64(0.5).as_secs() - 0.5e-9).abs() < 1e-21);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Hertz::new(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Hertz::from_mhz(400.0)), "400 MHz");
        assert_eq!(format!("{}", Hertz::from_ghz(3.4)), "3.40 GHz");
    }
}
