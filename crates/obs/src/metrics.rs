//! The aggregated metric primitives behind a [`crate::Recorder`]: counters
//! live directly in the registry map; this module provides the two stateful
//! instruments (gauges with a high-water mark and log2-bucketed latency
//! histograms) plus the bounded span ring.

use std::collections::VecDeque;

/// A point-in-time instrument tracking its current value and the highest
/// value it ever reached (the high-water mark).
///
/// Queue depths are the canonical use: submitters add, workers subtract,
/// and the high-water mark records the deepest backlog ever observed even
/// if the exporter only runs at the end.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Gauge {
    /// The current value.
    pub current: i64,
    /// The maximum value `current` ever reached (0 if never positive).
    pub highwater: i64,
}

impl Gauge {
    /// Adds `delta` (which may be negative) and updates the high-water
    /// mark.
    pub fn add(&mut self, delta: i64) {
        self.current += delta;
        self.highwater = self.highwater.max(self.current);
    }

    /// Overwrites the current value and updates the high-water mark.
    pub fn set(&mut self, value: i64) {
        self.current = value;
        self.highwater = self.highwater.max(value);
    }
}

/// Number of log2 buckets: one per possible bit length of a `u64` duration
/// in nanoseconds, plus bucket 0 for zero.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket latency histogram: bucket `i` counts observations whose
/// nanosecond value has bit length `i` (i.e. lies in `[2^(i-1), 2^i)`),
/// with bucket 0 reserved for exact zeros.
///
/// Log2 buckets trade resolution for a fixed, allocation-free footprint —
/// the same trade profiling-oriented collectors make — and cover the full
/// `u64` range from 1 ns to ~584 years without configuration.
#[derive(Clone, Debug)]
pub struct Log2Histogram {
    /// Observation counts per bit-length bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, in nanoseconds.
    pub sum_ns: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Log2Histogram {
    /// Records one observation of `ns` nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// An approximate `q`-quantile (`q` in `[0, 1]`) of the observed
    /// values, in nanoseconds.
    ///
    /// Finds the bucket holding the rank-`⌈q·count⌉` observation and
    /// interpolates linearly toward the bucket's upper bound (bucket `i`
    /// covers `[2^(i-1), 2^i)`), so the estimate errs high — the honest
    /// direction for a latency objective: a reported p99 under the target
    /// means the true p99 is under it too. Returns 0 when empty.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= rank {
                if i == 0 {
                    return 0;
                }
                let lower = 1u64 << (i - 1);
                let upper = if i == u64::BITS as usize {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                let frac = (rank - cumulative) as f64 / n as f64;
                return lower + ((upper - lower) as f64 * frac).round() as u64;
            }
            cumulative += n;
        }
        unreachable!("count > 0 means some bucket holds the rank");
    }

    /// The highest non-empty bucket index, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        (0..HIST_BUCKETS).rev().find(|&i| self.buckets[i] > 0)
    }

    /// Mean observed value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A request-scoped trace context: which trace a span belongs to and which
/// span caused it.
///
/// Generated once per request (at `QueryServer` admission, or parsed off
/// the wire) and handed down the call chain; every span started via
/// [`crate::Recorder::span_traced`] records it and derives a child context
/// ([`crate::Span::child_ctx`]) naming itself as the parent. The chain is
/// what lets `chrome_trace_json` draw one request's hops across threads as
/// a linked flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceCtx {
    /// Identifies the request; shared by every span it causes. Never 0 for
    /// a real trace.
    pub trace_id: u64,
    /// Span id of the causing span (0 at the root).
    pub parent: u64,
}

impl TraceCtx {
    /// The absent context: no trace, no parent.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent: 0,
    };

    /// Starts a fresh root trace with a process-unique id.
    pub fn fresh() -> TraceCtx {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(1);
        // SplitMix64: distinct counter values map to well-spread ids, so
        // ids from different subsystems don't collide on low bits.
        let mut z = NEXT
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TraceCtx {
            trace_id: z.max(1),
            parent: 0,
        }
    }

    /// A root context for a caller-supplied id (e.g. parsed off the wire);
    /// id 0 means "no trace" ([`TraceCtx::NONE`]).
    pub fn from_id(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent: 0,
        }
    }

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// The trace id as fixed-width lowercase hex (the wire form).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Parses a hex trace id back into a root context.
    pub fn parse_hex(s: &str) -> Option<TraceCtx> {
        let id = u64::from_str_radix(s, 16).ok()?;
        if id == 0 {
            None
        } else {
            Some(TraceCtx::from_id(id))
        }
    }
}

/// One finished span, as logged in the ring buffer.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// The span's phase name (e.g. `pipeline_sort`).
    pub name: &'static str,
    /// Optional `(key, value)` label (e.g. `("engine", "GpuSim")`).
    pub label: Option<(&'static str, String)>,
    /// Small integer id of the recording thread (stable per thread).
    pub tid: u64,
    /// Start time relative to the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Process-unique id of this span (0 for spans recorded before span
    /// ids existed — never for ring events from this crate).
    pub span_id: u64,
    /// The trace this span belongs to (`trace.parent` is the *causing*
    /// span's id), or `None` for untraced spans.
    pub trace: Option<TraceCtx>,
}

/// A bounded FIFO log of the most recent [`SpanEvent`]s.
///
/// The ring keeps memory constant on unbounded streams: when full, the
/// oldest event is dropped and counted, so exporters can report how much
/// history was lost.
#[derive(Clone, Debug)]
pub struct SpanRing {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

impl SpanRing {
    /// Creates a ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SpanRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: SpanEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SpanEvent> {
        self.buf.iter()
    }

    /// Events retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_highwater() {
        let mut g = Gauge::default();
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.current, 1);
        assert_eq!(g.highwater, 5);
        g.set(0);
        assert_eq!(g.highwater, 5, "set never lowers the mark");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Log2Histogram::default();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2
        h.observe(1024); // bucket 11
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[11], 1);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1030);
        assert_eq!(h.max_bucket(), Some(11));
        assert_eq!(h.mean_ns(), 206);
    }

    #[test]
    fn approx_quantile_interpolates_within_log2_buckets() {
        let mut h = Log2Histogram::default();
        assert_eq!(h.approx_quantile(0.5), 0, "empty histogram answers 0");
        // 100 observations of exactly 1000 ns: every quantile lands in
        // bucket 10 ([512, 1023]).
        for _ in 0..100 {
            h.observe(1000);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = h.approx_quantile(q);
            assert!((512..=1023).contains(&est), "q={q} est={est}");
        }
        // The estimate is monotone in q and errs toward the upper bound.
        assert!(h.approx_quantile(1.0) == 1023);
        assert!(h.approx_quantile(0.01) <= h.approx_quantile(0.99));

        // A bimodal split ranks into the right bucket.
        let mut h = Log2Histogram::default();
        for _ in 0..90 {
            h.observe(100); // bucket 7: [64, 127]
        }
        for _ in 0..10 {
            h.observe(100_000); // bucket 17: [65536, 131071]
        }
        assert!((64..=127).contains(&h.approx_quantile(0.5)));
        assert!((65_536..=131_071).contains(&h.approx_quantile(0.95)));
        // Zeros stay zeros.
        let mut h = Log2Histogram::default();
        h.observe(0);
        assert_eq!(h.approx_quantile(0.99), 0);
    }

    #[test]
    fn trace_ctx_is_unique_and_round_trips_hex() {
        let a = TraceCtx::fresh();
        let b = TraceCtx::fresh();
        assert_ne!(a.trace_id, b.trace_id);
        assert!(!a.is_none());
        assert_eq!(a.parent, 0, "fresh contexts are roots");
        let parsed = TraceCtx::parse_hex(&a.hex()).expect("hex round-trip");
        assert_eq!(parsed.trace_id, a.trace_id);
        assert!(TraceCtx::parse_hex("not hex").is_none());
        assert!(TraceCtx::parse_hex("0").is_none(), "0 means no trace");
        assert!(TraceCtx::NONE.is_none());
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = SpanRing::new(2);
        for i in 0..5u64 {
            r.push(SpanEvent {
                name: "t",
                label: None,
                tid: 0,
                start_ns: i,
                dur_ns: 1,
                span_id: i + 1,
                trace: None,
            });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let starts: Vec<u64> = r.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![3, 4]);
        assert!(!r.is_empty());
    }
}
