//! The worker-pool query server: bounded admission queue, deadlines, and
//! structured replies.
//!
//! The shape follows `gsm-sort`'s `WorkerPool` (fixed threads, one shared
//! queue behind a mutex + condvar, panic isolation per task) with one
//! serving-specific difference: the queue is *bounded* and admission
//! control happens at submit time. A server that queues without bound
//! converts overload into unbounded latency; this one converts it into an
//! immediate [`Reply::Overloaded`], which is the load-shedding posture the
//! paper takes on the ingest side (§1) applied to the query side.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use gsm_dsms::{EngineSnapshot, QueryAnswer, QueryRequest, SnapshotError, SnapshotRegistry};
use gsm_obs::{EngineEvent, Recorder, TraceCtx};

/// Sizing and timeout knobs for a [`QueryServer`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing queries. Queries are short and CPU-bound,
    /// so this should track available cores, not expected concurrency.
    pub workers: usize,
    /// Admission-queue bound. A submit that finds the queue at capacity is
    /// shed with [`Reply::Overloaded`] instead of waiting.
    pub queue_capacity: usize,
    /// Deadline applied by [`Client::call`]. A request still queued when
    /// its deadline passes is answered [`Reply::Expired`] without
    /// executing.
    pub default_deadline: Duration,
    /// Where to write a flight-recorder postmortem
    /// ([`Recorder::dump_postmortem`]) when a worker isolates a panic.
    /// `None` (the default) records the event without dumping.
    pub postmortem_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(1),
            postmortem_path: None,
        }
    }
}

/// A query request, addressed by the query's registration index
/// (`QueryId::index()` on the engine side).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Whole-stream φ-quantile.
    Quantile {
        /// Registration index of the target query.
        query: usize,
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
    },
    /// Whole-stream heavy hitters at a support threshold.
    HeavyHitters {
        /// Registration index of the target query.
        query: usize,
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
    /// Hierarchical heavy hitters at a support threshold.
    Hhh {
        /// Registration index of the target query.
        query: usize,
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
    /// Sliding-window φ-quantile.
    SlidingQuantile {
        /// Registration index of the target query.
        query: usize,
        /// Quantile fraction in `[0, 1]`.
        phi: f64,
    },
    /// Sliding-window heavy hitters at a support threshold.
    SlidingHeavyHitters {
        /// Registration index of the target query.
        query: usize,
        /// Support threshold in `(ε, 1]`.
        support: f64,
    },
}

impl Request {
    /// Builds the wire request addressing query index `query` with the
    /// typed engine-side request `req` — the inverse of [`Self::typed`].
    pub fn from_typed(query: usize, req: QueryRequest) -> Self {
        match req {
            QueryRequest::Quantile { phi } => Request::Quantile { query, phi },
            QueryRequest::HeavyHitters { support } => Request::HeavyHitters { query, support },
            QueryRequest::Hhh { support } => Request::Hhh { query, support },
            QueryRequest::SlidingQuantile { phi } => Request::SlidingQuantile { query, phi },
            QueryRequest::SlidingFrequency { support } => {
                Request::SlidingHeavyHitters { query, support }
            }
        }
    }

    /// Registration index of the target query.
    pub fn query_index(&self) -> usize {
        match *self {
            Request::Quantile { query, .. }
            | Request::HeavyHitters { query, .. }
            | Request::Hhh { query, .. }
            | Request::SlidingQuantile { query, .. }
            | Request::SlidingHeavyHitters { query, .. } => query,
        }
    }

    /// The typed engine-side request this wire request carries.
    pub fn typed(&self) -> QueryRequest {
        match *self {
            Request::Quantile { phi, .. } => QueryRequest::Quantile { phi },
            Request::HeavyHitters { support, .. } => QueryRequest::HeavyHitters { support },
            Request::Hhh { support, .. } => QueryRequest::Hhh { support },
            Request::SlidingQuantile { phi, .. } => QueryRequest::SlidingQuantile { phi },
            Request::SlidingHeavyHitters { support, .. } => {
                QueryRequest::SlidingFrequency { support }
            }
        }
    }

    /// Stable label for latency attribution (`serve_latency{kind=...}`).
    pub fn kind_label(&self) -> &'static str {
        self.typed().kind().name()
    }

    /// Executes against a frozen snapshot. This is the *entire* read path —
    /// one typed [`EngineSnapshot::request`] call, byte-identical to
    /// calling the same snapshot method directly, which is what the verify
    /// harness asserts.
    fn execute(&self, snap: &EngineSnapshot) -> Result<QueryAnswer, SnapshotError> {
        snap.request(self.query_index(), self.typed())
    }
}

/// Every request gets exactly one of these — the zero-silent-drop
/// contract ([`ServerStats::lost`] proves it).
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The query executed against the snapshot of the given epoch.
    Answer {
        /// Publication epoch of the snapshot that answered.
        epoch: u64,
        /// The answer itself.
        answer: QueryAnswer,
    },
    /// Shed at admission: the queue was at capacity (or the server was
    /// shutting down). The caller should back off and retry.
    Overloaded {
        /// Queue depth observed at shed time.
        queue_depth: usize,
    },
    /// The request waited in the queue past its deadline and was not
    /// executed.
    Expired,
    /// No publishable data yet: either nothing has been published, or the
    /// target summary has no sealed window to answer from.
    NotReady,
    /// The request itself is invalid (unknown query index, kind mismatch,
    /// or an out-of-range parameter rejected by the summary).
    BadQuery(String),
}

/// Monotone reply accounting. `submitted` counts admissions *and* sheds;
/// the other fields partition replies by variant, so
/// [`ServerStats::lost`] == 0 is exactly the "no silent drops" invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests submitted (including those shed at admission).
    pub submitted: u64,
    /// [`Reply::Answer`] replies.
    pub answered: u64,
    /// [`Reply::Overloaded`] replies.
    pub overloaded: u64,
    /// [`Reply::Expired`] replies.
    pub expired: u64,
    /// [`Reply::NotReady`] replies.
    pub not_ready: u64,
    /// [`Reply::BadQuery`] replies.
    pub bad_query: u64,
}

impl ServerStats {
    /// Total structured replies produced.
    pub fn replied(&self) -> u64 {
        self.answered + self.overloaded + self.expired + self.not_ready + self.bad_query
    }

    /// Requests that got no reply — must be 0 for a drained server.
    pub fn lost(&self) -> u64 {
        self.submitted.saturating_sub(self.replied())
    }
}

#[derive(Default)]
struct StatsCells {
    submitted: AtomicU64,
    answered: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    not_ready: AtomicU64,
    bad_query: AtomicU64,
}

struct Pending {
    request: Request,
    enqueued: Instant,
    deadline: Instant,
    /// The request's trace, with the admission span as parent — workers
    /// continue the chain from here.
    trace: TraceCtx,
    reply_tx: mpsc::Sender<Reply>,
}

struct QueueState {
    jobs: VecDeque<Pending>,
    closed: bool,
}

struct Inner {
    registry: Arc<SnapshotRegistry>,
    queue: Mutex<QueueState>,
    available: Condvar,
    cfg: ServeConfig,
    stats: StatsCells,
    obs: Recorder,
}

impl Inner {
    /// Admission control: either enqueue and return the reply receiver, or
    /// shed immediately. Holds the queue lock only for the length check
    /// and push — workers contend on the same lock, so this must stay
    /// tiny.
    fn submit(
        &self,
        request: Request,
        deadline: Duration,
        trace: TraceCtx,
    ) -> Result<mpsc::Receiver<Reply>, Reply> {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.obs.count("serve_submitted", 1);
        let admit = self.obs.span_traced("serve_admit", trace);
        let mut q = self.queue.lock().expect("serve queue lock");
        if q.closed || q.jobs.len() >= self.cfg.queue_capacity {
            let depth = q.jobs.len();
            drop(q);
            self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            self.obs.count("serve_overloaded", 1);
            self.obs.record_event(EngineEvent::Shed {
                source: "serve_admission",
                dropped: 1,
            });
            return Err(Reply::Overloaded { queue_depth: depth });
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let now = Instant::now();
        q.jobs.push_back(Pending {
            request,
            enqueued: now,
            deadline: now + deadline,
            trace: admit.child_ctx(),
            reply_tx,
        });
        self.obs.gauge_add("serve_queue_depth", 1);
        drop(q);
        self.available.notify_one();
        Ok(reply_rx)
    }

    /// Current admission-queue depth (requests admitted but not yet
    /// dequeued by a worker).
    fn queue_depth(&self) -> usize {
        self.queue.lock().expect("serve queue lock").jobs.len()
    }

    fn record(&self, reply: &Reply) {
        let (cell, name) = match reply {
            Reply::Answer { .. } => (&self.stats.answered, "serve_answers"),
            Reply::Overloaded { .. } => (&self.stats.overloaded, "serve_overloaded"),
            Reply::Expired => (&self.stats.expired, "serve_expired"),
            Reply::NotReady => (&self.stats.not_ready, "serve_not_ready"),
            Reply::BadQuery(_) => (&self.stats.bad_query, "serve_bad_query"),
        };
        cell.fetch_add(1, Ordering::Relaxed);
        self.obs.count(name, 1);
    }
}

/// Worker body: pop → deadline check → execute against the latest
/// snapshot → reply. Runs until the queue is closed *and* drained, so
/// shutdown never strands an admitted request without a reply.
fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("serve queue lock");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.closed {
                    break None;
                }
                q = inner.available.wait(q).expect("serve queue lock");
            }
        };
        let Some(job) = job else { return };
        inner.obs.gauge_add("serve_queue_depth", -1);
        let started = Instant::now();
        inner
            .obs
            .observe_ns("serve_wait", (started - job.enqueued).as_nanos() as u64);
        let exec = inner.obs.span_traced("serve_exec", job.trace);
        let reply = if started >= job.deadline {
            Reply::Expired
        } else {
            execute_one(inner, &job.request, exec.child_ctx())
        };
        exec.finish();
        inner.record(&reply);
        // A send error means the requester vanished (e.g. a TCP handler
        // whose connection dropped); the reply was still produced and
        // counted, so the zero-loss accounting holds.
        let _ = job.reply_tx.send(reply);
    }
}

fn execute_one(inner: &Inner, request: &Request, trace: TraceCtx) -> Reply {
    let Some(snap) = inner.registry.latest() else {
        return Reply::NotReady;
    };
    let started = Instant::now();
    let query_span = inner.obs.span_traced("serve_query", trace);
    // Summaries assert on out-of-range parameters (e.g. support ≤ ε);
    // catch the panic so one bad request answers BadQuery instead of
    // killing the worker.
    let outcome = catch_unwind(AssertUnwindSafe(|| request.execute(&snap)));
    query_span.finish();
    inner.obs.observe_ns_labeled(
        "serve_latency",
        ("kind", request.kind_label()),
        started.elapsed().as_nanos() as u64,
    );
    match outcome {
        Ok(Ok(answer)) => Reply::Answer {
            epoch: snap.epoch(),
            answer,
        },
        Ok(Err(SnapshotError::Empty)) => Reply::NotReady,
        Ok(Err(err)) => Reply::BadQuery(err.to_string()),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("query panicked");
            inner.obs.record_event(EngineEvent::WorkerPanic {
                worker: thread::current()
                    .name()
                    .unwrap_or("gsm-serve-worker")
                    .to_string(),
                message: msg.to_string(),
            });
            if let Some(path) = &inner.cfg.postmortem_path {
                // Best-effort: a failing dump must not take the reply with
                // it — the panic is already isolated and accounted.
                let _ = inner
                    .obs
                    .dump_postmortem(path, "worker panic isolated to one request");
            }
            Reply::BadQuery(msg.to_string())
        }
    }
}

/// The serving frontend: a fixed worker pool answering queries against the
/// registry's latest snapshot.
///
/// ```
/// use gsm_core::Engine;
/// use gsm_dsms::StreamEngine;
/// use gsm_serve::{QueryServer, Request, Reply, ServeConfig};
///
/// let mut eng = StreamEngine::new(Engine::Host);
/// let q = eng.register_quantile(0.02);
/// let server = QueryServer::start(eng.serve(), ServeConfig::default());
/// let client = server.client();
/// eng.push_all((0..4096).map(|i| i as f32));
/// match client.call(Request::Quantile { query: q.index(), phi: 0.5 }) {
///     Reply::Answer { answer, .. } => println!("median ≈ {answer:?}"),
///     other => println!("{other:?}"),
/// }
/// ```
///
/// Dropping the server closes the queue, drains already-admitted requests
/// (each still gets its reply), and joins the workers. Clients that
/// submit during or after shutdown get [`Reply::Overloaded`].
pub struct QueryServer {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Starts `cfg.workers` worker threads over `registry`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` or `cfg.queue_capacity` is zero.
    pub fn start(registry: Arc<SnapshotRegistry>, cfg: ServeConfig) -> Self {
        Self::with_recorder(registry, cfg, Recorder::disabled())
    }

    /// [`Self::start`] with an observability recorder: emits `serve_*`
    /// counters for every reply variant, a `serve_queue_depth` gauge, and
    /// `serve_wait` / `serve_latency{kind=...}` histograms.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` or `cfg.queue_capacity` is zero.
    pub fn with_recorder(registry: Arc<SnapshotRegistry>, cfg: ServeConfig, obs: Recorder) -> Self {
        assert!(cfg.workers >= 1, "a server needs at least one worker");
        assert!(cfg.queue_capacity >= 1, "queue capacity must be at least 1");
        let inner = Arc::new(Inner {
            registry,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            cfg,
            stats: StatsCells::default(),
            obs,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("gsm-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        QueryServer { inner, workers }
    }

    /// A cloneable, thread-safe handle for submitting requests.
    pub fn client(&self) -> Client {
        Client {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The snapshot registry this server reads from.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.inner.registry
    }

    /// A consistent point-in-time read of the reply accounting.
    ///
    /// `lost()` can transiently exceed 0 while requests are in flight; on
    /// a drained (or dropped-and-joined) server it must be exactly 0.
    pub fn stats(&self) -> ServerStats {
        stats_snapshot(&self.inner.stats)
    }

    /// Current admission-queue depth (admitted, not yet dequeued).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }
}

fn stats_snapshot(cells: &StatsCells) -> ServerStats {
    ServerStats {
        submitted: cells.submitted.load(Ordering::Relaxed),
        answered: cells.answered.load(Ordering::Relaxed),
        overloaded: cells.overloaded.load(Ordering::Relaxed),
        expired: cells.expired.load(Ordering::Relaxed),
        not_ready: cells.not_ready.load(Ordering::Relaxed),
        bad_query: cells.bad_query.load(Ordering::Relaxed),
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.inner.queue.lock().expect("serve queue lock").closed = true;
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// In-process request handle. Cloning is cheap (one `Arc` bump); clones
/// share the server's queue, stats, and lifetime.
#[derive(Clone)]
pub struct Client {
    inner: Arc<Inner>,
}

impl Client {
    /// Submits a request under the server's default deadline and blocks
    /// for its structured reply. A fresh [`TraceCtx`] is generated at
    /// admission; use [`Client::call_traced`] to keep the id.
    pub fn call(&self, request: Request) -> Reply {
        let deadline = self.inner.cfg.default_deadline;
        self.call_traced(request, deadline, TraceCtx::fresh())
    }

    /// Submits a request with an explicit deadline. The deadline bounds
    /// *queue wait*: a request still queued when it passes is answered
    /// [`Reply::Expired`]; once execution starts it runs to completion
    /// (snapshot queries are short and never block on ingestion).
    pub fn call_within(&self, request: Request, deadline: Duration) -> Reply {
        self.call_traced(request, deadline, TraceCtx::fresh())
    }

    /// [`Client::call_within`] under a caller-supplied trace context —
    /// the id that admission, dequeue, and query-execution spans all
    /// record, linking one request's hops in `chrome_trace_json`. Callers
    /// that surface replies elsewhere (e.g. the TCP front) echo
    /// `ctx.trace_id` alongside the reply.
    pub fn call_traced(&self, request: Request, deadline: Duration, ctx: TraceCtx) -> Reply {
        match self.inner.submit(request, deadline, ctx) {
            Err(shed) => shed,
            Ok(reply_rx) => match reply_rx.recv() {
                Ok(reply) => reply,
                // Unreachable in practice: workers reply before dropping
                // the sender, and drain the queue on shutdown. Account it
                // so `lost()` stays honest even if that ever regresses.
                Err(_) => {
                    let reply = Reply::BadQuery("server dropped the request".to_string());
                    self.inner.record(&reply);
                    reply
                }
            },
        }
    }

    /// Epoch of the latest published snapshot (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.inner.registry.epoch()
    }

    /// The deadline [`Client::call`] applies ([`ServeConfig::default_deadline`]).
    pub fn default_deadline(&self) -> Duration {
        self.inner.cfg.default_deadline
    }

    /// A consistent point-in-time read of the reply accounting.
    pub fn stats(&self) -> ServerStats {
        stats_snapshot(&self.inner.stats)
    }

    /// Current admission-queue depth (admitted, not yet dequeued).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::Engine;
    use gsm_dsms::StreamEngine;

    fn serving_engine(n: usize) -> (StreamEngine, usize, usize, Arc<SnapshotRegistry>) {
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(n as u64);
        let q = eng.register_quantile(0.02);
        let f = eng.register_frequency(0.001);
        let reg = eng.serve();
        eng.push_all((0..n).map(|i| (i % 100) as f32));
        eng.flush();
        eng.publish_now();
        (eng, q.index(), f.index(), reg)
    }

    #[test]
    fn answers_match_direct_snapshot_queries() {
        let (_eng, q, f, reg) = serving_engine(20_000);
        let server = QueryServer::start(Arc::clone(&reg), ServeConfig::default());
        let client = server.client();
        let snap = reg.latest().expect("published");
        match client.call(Request::Quantile { query: q, phi: 0.5 }) {
            Reply::Answer { epoch, answer } => {
                assert_eq!(epoch, snap.epoch());
                assert_eq!(
                    answer,
                    QueryAnswer::Quantile(snap.quantile(q, 0.5).unwrap())
                );
            }
            other => panic!("expected an answer, got {other:?}"),
        }
        match client.call(Request::HeavyHitters {
            query: f,
            support: 0.009,
        }) {
            Reply::Answer { answer, .. } => {
                assert_eq!(
                    answer,
                    QueryAnswer::HeavyHitters(snap.heavy_hitters(f, 0.009).unwrap())
                );
            }
            other => panic!("expected an answer, got {other:?}"),
        }
        drop(server);
    }

    #[test]
    fn bad_requests_get_structured_replies_and_workers_survive() {
        let (_eng, q, f, reg) = serving_engine(5_000);
        let server = QueryServer::start(reg, ServeConfig::default());
        let client = server.client();
        // Unknown index.
        assert!(matches!(
            client.call(Request::Quantile {
                query: 99,
                phi: 0.5
            }),
            Reply::BadQuery(_)
        ));
        // Kind mismatch.
        assert!(matches!(
            client.call(Request::HeavyHitters {
                query: q,
                support: 0.01
            }),
            Reply::BadQuery(_)
        ));
        // Out-of-range support panics inside the summary → caught.
        assert!(matches!(
            client.call(Request::HeavyHitters {
                query: f,
                support: 0.0
            }),
            Reply::BadQuery(_)
        ));
        // The pool must still answer after all that.
        assert!(matches!(
            client.call(Request::Quantile { query: q, phi: 0.5 }),
            Reply::Answer { .. }
        ));
        let stats = server.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.bad_query, 3);
        assert_eq!(stats.answered, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn unpublished_registry_answers_not_ready() {
        let mut eng = StreamEngine::new(Engine::Host);
        let q = eng.register_quantile(0.02);
        let reg = eng.serve();
        // Published, but nothing sealed: quantiles have no data.
        let server = QueryServer::start(reg, ServeConfig::default());
        assert_eq!(
            server.client().call(Request::Quantile {
                query: q.index(),
                phi: 0.5
            }),
            Reply::NotReady
        );
    }

    #[test]
    fn saturation_sheds_with_overloaded_not_blocking() {
        let (_eng, q, _f, reg) = serving_engine(5_000);
        // One worker, capacity 1: park the worker on a job, fill the one
        // slot, and every further submit must shed immediately.
        let server = QueryServer::start(
            reg,
            ServeConfig {
                workers: 1,
                queue_capacity: 1,
                default_deadline: Duration::from_secs(5),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let blocker = {
            let c = client.clone();
            thread::spawn(move || {
                // Saturate: issue enough calls that some must overlap.
                (0..64)
                    .map(|_| c.call(Request::Quantile { query: q, phi: 0.5 }))
                    .collect::<Vec<_>>()
            })
        };
        let mine: Vec<Reply> = (0..64)
            .map(|_| client.call(Request::Quantile { query: q, phi: 0.5 }))
            .collect();
        let theirs = blocker.join().expect("client thread");
        drop(server);
        let all: Vec<&Reply> = mine.iter().chain(theirs.iter()).collect();
        assert!(all
            .iter()
            .all(|r| matches!(r, Reply::Answer { .. } | Reply::Overloaded { .. })));
    }

    #[test]
    fn queued_requests_expire_past_their_deadline() {
        let (_eng, q, _f, reg) = serving_engine(5_000);
        let server = QueryServer::start(
            reg,
            ServeConfig {
                workers: 1,
                queue_capacity: 8,
                default_deadline: Duration::from_secs(1),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        // A zero deadline expires at dequeue time, deterministically.
        let reply = client.call_within(Request::Quantile { query: q, phi: 0.5 }, Duration::ZERO);
        assert_eq!(reply, Reply::Expired);
        let stats = server.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_requests_and_sheds_new_ones() {
        let (_eng, q, _f, reg) = serving_engine(5_000);
        let server = QueryServer::start(reg, ServeConfig::default());
        let client = server.client();
        assert!(matches!(
            client.call(Request::Quantile { query: q, phi: 0.5 }),
            Reply::Answer { .. }
        ));
        drop(server);
        assert!(matches!(
            client.call(Request::Quantile { query: q, phi: 0.5 }),
            Reply::Overloaded { .. }
        ));
        let stats = client.stats();
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn traced_calls_link_admit_exec_and_query_spans() {
        let rec = Recorder::enabled();
        let (_eng, q, _f, reg) = serving_engine(5_000);
        let server = QueryServer::with_recorder(reg, ServeConfig::default(), rec.clone());
        let client = server.client();
        let ctx = TraceCtx::fresh();
        let reply = client.call_traced(
            Request::Quantile { query: q, phi: 0.5 },
            Duration::from_secs(5),
            ctx,
        );
        assert!(matches!(reply, Reply::Answer { .. }));
        drop(server);
        let spans = rec.spans();
        let of = |name: &str| {
            spans
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("span {name} recorded"))
        };
        let (admit, exec, query) = (of("serve_admit"), of("serve_exec"), of("serve_query"));
        for e in [admit, exec, query] {
            assert_eq!(e.trace.map(|t| t.trace_id), Some(ctx.trace_id));
        }
        // The chain: root → admit → exec → query, linked by span ids.
        assert_eq!(admit.trace.unwrap().parent, 0);
        assert_eq!(exec.trace.unwrap().parent, admit.span_id);
        assert_eq!(query.trace.unwrap().parent, exec.span_id);
        let trace = rec.chrome_trace_json();
        assert!(trace.contains(&format!("\"id\":\"{}\"", ctx.hex())));
        assert!(trace.contains("\"ph\":\"s\""));
        assert!(trace.contains("\"ph\":\"f\""));
    }

    #[test]
    fn worker_panic_records_event_and_dumps_postmortem() {
        let rec = Recorder::enabled();
        let (_eng, _q, f, reg) = serving_engine(5_000);
        let path = std::env::temp_dir().join(format!(
            "gsm-serve-postmortem-{}-{:x}.json",
            std::process::id(),
            TraceCtx::fresh().trace_id
        ));
        let server = QueryServer::with_recorder(
            reg,
            ServeConfig {
                postmortem_path: Some(path.clone()),
                ..ServeConfig::default()
            },
            rec.clone(),
        );
        // Out-of-range support panics inside the summary: isolated to one
        // BadQuery reply, logged, and dumped.
        let reply = server.client().call(Request::HeavyHitters {
            query: f,
            support: 0.0,
        });
        assert!(matches!(reply, Reply::BadQuery(_)));
        drop(server);
        let events = rec.flight_events();
        let panic_event = events
            .iter()
            .find(|e| e.event.kind() == "worker_panic")
            .expect("panic recorded in the flight ring");
        assert!(matches!(
            &panic_event.event,
            EngineEvent::WorkerPanic { worker, .. } if worker.starts_with("gsm-serve-")
        ));
        let doc = std::fs::read_to_string(&path).expect("postmortem written");
        assert!(doc.starts_with("{\"schema\":1,\"created_by\":\"gsm-obs/flight-recorder\""));
        assert!(doc.contains("\"kind\":\"worker_panic\""));
        assert!(doc.contains("worker panic isolated"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recorder_sees_the_serve_metrics() {
        let rec = Recorder::enabled();
        let (_eng, q, _f, reg) = serving_engine(5_000);
        let server = QueryServer::with_recorder(reg, ServeConfig::default(), rec.clone());
        let client = server.client();
        for _ in 0..5 {
            let _ = client.call(Request::Quantile { query: q, phi: 0.5 });
        }
        drop(server);
        assert_eq!(rec.counter("serve_submitted"), 5);
        assert_eq!(rec.counter("serve_answers"), 5);
        assert_eq!(
            rec.histogram_labeled("serve_latency", ("kind", "quantile"))
                .unwrap()
                .count,
            5
        );
        assert_eq!(rec.histogram("serve_wait").unwrap().count, 5);
        assert_eq!(rec.gauge("serve_queue_depth").unwrap().current, 0);
    }
}
