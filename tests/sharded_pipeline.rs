//! Property tests for shard-parallel ingestion: k = 1 is the identity
//! refactor (byte-identical to the unsharded pipeline on arbitrary
//! fixed-seed streams), and multi-shard merges preserve the counting
//! contracts on arbitrary inputs — the complement to the deterministic
//! family gate in `verify_gate.rs`.

use gsm::core::{Engine, ShardedPipeline, WindowedPipeline};
use gsm::sketch::exact::ExactStats;
use gsm::sketch::{ExpHistogram, LossyCounting};
use proptest::collection::vec;
use proptest::prelude::*;

/// Finite, NaN-free f32 values on a bounded range (the estimators' domain).
fn value() -> impl Strategy<Value = f32> {
    (-1.0e6f32..1.0e6).prop_map(|v| v)
}

/// Small integer ids, so streams carry meaningful frequencies.
fn id() -> impl Strategy<Value = f32> {
    (0u32..64).prop_map(|v| v as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One shard is byte-identical to the plain windowed pipeline on
    /// arbitrary streams — serialized summary state, not just answers.
    #[test]
    fn one_shard_equals_windowed_pipeline(
        data in vec(value(), 1..4000),
        window in 32usize..512,
    ) {
        // eps chosen so every window in range satisfies window >= ⌈1/eps⌉
        // with float-rounding slack.
        let eps = 2.0 / window as f64;
        for engine in [Engine::Host, Engine::GpuSim] {
            let mut plain =
                WindowedPipeline::new(engine, window, LossyCounting::with_window(eps, window));
            let mut sharded =
                ShardedPipeline::new(engine, window, 1, |_| LossyCounting::with_window(eps, window));
            for &v in &data {
                plain.push(v);
                sharded.push(v);
            }
            plain.flush();
            let merged = sharded.merged_sink();
            prop_assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                serde_json::to_string(plain.sink()).unwrap(),
                "k=1 diverged on {:?}", engine
            );
        }
    }

    /// Merged shard counts keep lossy counting's contracts on arbitrary id
    /// streams: totals conserved, no overestimate, undercount within the
    /// summary's own surfaced bound.
    #[test]
    fn merged_shards_keep_counting_contracts(
        data in vec(id(), 64..4000),
        k in 2usize..5,
    ) {
        let window = 256;
        let mut p = ShardedPipeline::new(Engine::Host, window, k, |_| {
            LossyCounting::with_window(0.02, window)
        });
        for &v in &data {
            p.push(v);
        }
        let merged = p.merged_sink();
        prop_assert_eq!(merged.count(), data.len() as u64);

        let oracle = ExactStats::new(&data);
        let bound = merged.undercount_bound();
        for probe in 0..64u32 {
            let v = probe as f32;
            let est = merged.estimate(v);
            let truth = oracle.frequency(v);
            prop_assert!(est <= truth, "overestimate on {}: {} > {}", v, est, truth);
            prop_assert!(
                truth - est <= bound,
                "undercount on {}: {} > surfaced bound {}", v, truth - est, bound
            );
        }
    }

    /// Shard-merged quantile summaries surface an error no worse than the
    /// configured ε and answer within it on arbitrary streams.
    #[test]
    fn merged_shards_keep_quantile_contract(
        data in vec(value(), 512..4000),
        k in 2usize..5,
    ) {
        let (eps, window) = (0.05, 128);
        let mut p = ShardedPipeline::new(Engine::Host, window, k, |_| {
            ExpHistogram::new(eps, window, data.len() as u64)
        });
        for &v in &data {
            p.push(v);
        }
        let merged = p.merged_sink();
        prop_assert!(
            merged.tracked_eps() <= eps,
            "merged summary surfaced eps {} > {}", merged.tracked_eps(), eps
        );
        let oracle = ExactStats::new(&data);
        let bound = eps + 2.0 / data.len() as f64;
        for phi in [0.25, 0.5, 0.75] {
            let err = oracle.quantile_rank_error(phi, merged.query(phi));
            prop_assert!(err <= bound, "phi={}: rank error {} > {}", phi, err, bound);
        }
    }
}
