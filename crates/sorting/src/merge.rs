//! The instrumented CPU-side merge of the four sorted channel runs.
//!
//! Paper §4.4: *"The sorted sequences of length n/4 are read back by the CPU
//! and a merge operation is performed in software. The merge routine
//! performs O(n) comparisons and is very efficient."* Selecting the minimum
//! of four run heads costs three comparisons per emitted element; the scan
//! is sequential in all five arrays, so it is cache-friendly — exactly why
//! the paper can afford it on the CPU.

use gsm_cpu::Machine;

/// Branch-site id for the head-selection comparisons.
const MERGE_SITE: u64 = 10;

/// Merges four ascending runs into one ascending vector, charging `m` for
/// every element read, head comparison, and output write.
///
/// `bases` are the runs' simulated base addresses and `out_base` the output
/// array's; pass disjoint ranges so cache contention is modeled faithfully.
pub fn merge4(runs: [&[f32]; 4], m: &mut Machine, bases: [u64; 4], out_base: u64) -> Vec<f32> {
    debug_assert!(
        runs.iter().all(|r| r.windows(2).all(|w| w[0] <= w[1])),
        "merge4 inputs must be sorted"
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut idx = [0usize; 4];

    // Cached head values: a real implementation keeps them in registers and
    // re-reads memory only when a run advances.
    let mut heads: [Option<f32>; 4] = core::array::from_fn(|k| {
        if runs[k].is_empty() {
            None
        } else {
            m.read(bases[k]);
            Some(runs[k][0])
        }
    });

    while out.len() < total {
        // Tournament over up to four heads: three comparisons.
        let mut best: Option<(usize, f32)> = None;
        for (k, head) in heads.iter().enumerate() {
            if let Some(v) = *head {
                match best {
                    None => best = Some((k, v)),
                    Some((_, bv)) => {
                        let take = v < bv;
                        m.branch(MERGE_SITE + k as u64, take);
                        m.alu(1);
                        if take {
                            best = Some((k, v));
                        }
                    }
                }
            }
        }
        let (k, v) = best.expect("at least one run non-empty");
        m.write(out_base + 4 * out.len() as u64);
        m.alu(2);
        out.push(v);
        idx[k] += 1;
        heads[k] = if idx[k] < runs[k].len() {
            m.read(bases[k] + 4 * idx[k] as u64);
            Some(runs[k][idx[k]])
        } else {
            None
        };
    }
    out
}

use crate::radix::{key_of, value_of};

/// Reusable buffers for [`merge4_into`]: the sentinel-terminated key images
/// of the four runs and the two level-one pair merges. Owning one of these
/// per call site keeps the hot merge free of large allocations — at window
/// sizes ≥ 64 Ki the buffers cross the allocator's mmap threshold, and
/// re-mapping (plus first-touch faulting) them every window costs more than
/// the merge itself.
#[derive(Default)]
pub struct MergeScratch {
    keys: [Vec<u32>; 4],
    ab: Vec<u32>,
    cd: Vec<u32>,
}

/// Branchless select: `x` when `take` else `y`, with no data-dependent
/// branch for the predictor to miss (merge comparisons are coin flips).
#[inline(always)]
fn sel(take: bool, x: u32, y: u32) -> u32 {
    y ^ ((x ^ y) & (take as u32).wrapping_neg())
}

/// One step of a sentinel-guarded two-pointer merge: reads both heads,
/// emits the smaller, advances exactly one cursor. Ties take the left run —
/// values equal under `total_cmp` share a bit pattern, so the choice can
/// never change the output bytes.
#[inline(always)]
fn merge_step(a: &[u32], b: &[u32], i: &mut usize, j: &mut usize) -> u32 {
    let (x, y) = (a[*i], b[*j]);
    let take = x <= y;
    *i += take as usize;
    *j += usize::from(!take);
    sel(take, x, y)
}

/// Merges four ascending (`total_cmp`-sorted) runs, writing the `limit`
/// smallest elements into `out` (cleared first; the full merge when `limit`
/// covers every element). Exact bit patterns are preserved.
///
/// This is the host-parallel backend's recombination step, run on the
/// submitting thread after the worker pool sorts the lanes — so unlike the
/// instrumented [`merge4`] it is built for real speed, not modeling: runs
/// are compared as [`key_of`] integer keys, the two pair merges interleave
/// in one loop (two independent dependency chains for the out-of-order
/// core), and every select is branchless. A `u32::MAX` sentinel terminates
/// each run so the inner loops need no exhaustion tests; the one value
/// whose key collides with the sentinel (the all-ones-payload NaN) falls
/// back to [`merge4`]'s plain tournament.
pub fn merge4_into(
    runs: [&[f32]; 4],
    scratch: &mut MergeScratch,
    out: &mut Vec<f32>,
    limit: usize,
) {
    debug_assert!(
        runs.iter()
            .all(|r| r.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le())),
        "merge4_into inputs must be sorted"
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let take = total.min(limit);
    // Runs are sorted, so the last element is the maximum: a tail key of
    // u32::MAX would alias the sentinel and walk past the end of a run.
    if runs
        .iter()
        .any(|r| r.last().is_some_and(|v| key_of(*v) == u32::MAX))
    {
        merge4_tournament(runs, out, take);
        return;
    }
    for (keys, run) in scratch.keys.iter_mut().zip(&runs) {
        keys.clear();
        keys.reserve(run.len() + 1);
        keys.extend(run.iter().map(|v| key_of(*v)));
        keys.push(u32::MAX);
    }
    let nab = runs[0].len() + runs[1].len();
    let ncd = runs[2].len() + runs[3].len();
    scratch.ab.clear();
    scratch.ab.resize(nab + 1, 0);
    scratch.cd.clear();
    scratch.cd.resize(ncd + 1, 0);
    {
        let [ka, kb, kc, kd] = &scratch.keys;
        let (mut i, mut j, mut p, mut q) = (0, 0, 0, 0);
        let common = nab.min(ncd);
        for k in 0..common {
            scratch.ab[k] = merge_step(ka, kb, &mut i, &mut j);
            scratch.cd[k] = merge_step(kc, kd, &mut p, &mut q);
        }
        for k in common..nab {
            scratch.ab[k] = merge_step(ka, kb, &mut i, &mut j);
        }
        for k in common..ncd {
            scratch.cd[k] = merge_step(kc, kd, &mut p, &mut q);
        }
        scratch.ab[nab] = u32::MAX;
        scratch.cd[ncd] = u32::MAX;
    }
    out.clear();
    out.resize(take, 0.0);
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        *slot = value_of(merge_step(&scratch.ab, &scratch.cd, &mut i, &mut j));
    }
}

/// Plain 4-way tournament fallback for [`merge4_into`] (same shape as the
/// instrumented [`merge4`], zero accounting).
fn merge4_tournament(runs: [&[f32]; 4], out: &mut Vec<f32>, take: usize) {
    out.clear();
    out.reserve(take);
    let mut idx = [0usize; 4];
    while out.len() < take {
        let mut best: Option<(usize, f32)> = None;
        for (k, run) in runs.iter().enumerate() {
            if let Some(&v) = run.get(idx[k]) {
                match best {
                    Some((_, bv)) if v.total_cmp(&bv).is_ge() => {}
                    _ => best = Some((k, v)),
                }
            }
        }
        let (k, v) = best.expect("at least one run non-empty");
        out.push(v);
        idx[k] += 1;
    }
}

/// Merges four ascending runs into one ascending vector with no simulated
/// machine attached — convenience form of [`merge4_into`] with fresh
/// buffers and no length limit.
pub fn merge4_plain(runs: [&[f32]; 4]) -> Vec<f32> {
    let mut out = Vec::new();
    merge4_into(runs, &mut MergeScratch::default(), &mut out, usize::MAX);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_cpu::CpuCostModel;

    fn machine() -> Machine {
        Machine::new(CpuCostModel::pentium4_3400())
    }

    fn check(runs: [&[f32]; 4]) {
        let mut expect: Vec<f32> = runs.iter().flat_map(|r| r.iter().copied()).collect();
        expect.sort_by(f32::total_cmp);
        let out = merge4(
            runs,
            &mut machine(),
            [0, 1 << 20, 2 << 20, 3 << 20],
            4 << 20,
        );
        assert_eq!(out, expect);
    }

    #[test]
    fn merges_equal_length_runs() {
        check([
            &[1.0, 5.0, 9.0],
            &[2.0, 6.0, 10.0],
            &[3.0, 7.0, 11.0],
            &[4.0, 8.0, 12.0],
        ]);
    }

    #[test]
    fn merges_ragged_and_empty_runs() {
        check([&[], &[1.0], &[0.5, 0.6, 0.7, 0.8], &[]]);
        check([&[], &[], &[], &[]]);
    }

    #[test]
    fn merges_with_duplicates_and_infinities() {
        check([
            &[1.0, 1.0, f32::INFINITY],
            &[1.0, 2.0],
            &[0.0, 1.0, 1.0],
            &[f32::INFINITY],
        ]);
    }

    #[test]
    fn merge_is_linear_in_comparisons() {
        let a: Vec<f32> = (0..1000).map(|i| (4 * i) as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| (4 * i + 1) as f32).collect();
        let c: Vec<f32> = (0..1000).map(|i| (4 * i + 2) as f32).collect();
        let d: Vec<f32> = (0..1000).map(|i| (4 * i + 3) as f32).collect();
        let mut m = machine();
        let out = merge4(
            [&a, &b, &c, &d],
            &mut m,
            [0, 1 << 20, 2 << 20, 3 << 20],
            4 << 20,
        );
        assert_eq!(out.len(), 4000);
        // At most 3 head comparisons per output element.
        assert!(m.stats().branches <= 3 * 4000);
        // Reads: one per element consumed (plus 4 initial heads).
        assert!(m.stats().reads <= 4004);
    }

    #[test]
    fn plain_merge_matches_instrumented() {
        let runs: [&[f32]; 4] = [
            &[1.0, 5.0, f32::INFINITY],
            &[-0.0, 2.0],
            &[0.0, 1.0, 1.0],
            &[],
        ];
        let plain = merge4_plain(runs);
        let inst = merge4(
            runs,
            &mut machine(),
            [0, 1 << 20, 2 << 20, 3 << 20],
            4 << 20,
        );
        let plain_bits: Vec<u32> = plain.iter().map(|v| v.to_bits()).collect();
        let inst_bits: Vec<u32> = inst.iter().map(|v| v.to_bits()).collect();
        assert_eq!(plain_bits, inst_bits);
        // -0.0 sorts before 0.0 under total_cmp.
        assert_eq!(plain[0].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn merge_into_reuses_scratch_and_honors_limit() {
        let mut scratch = MergeScratch::default();
        let mut out = Vec::new();
        // Different shapes through the same scratch, including ragged/empty.
        let cases: [[&[f32]; 4]; 3] = [
            [&[1.0, 5.0], &[2.0, 6.0], &[3.0, 7.0], &[4.0, 8.0]],
            [&[], &[1.0], &[0.5, 0.6, 0.7, 0.8], &[]],
            [&[-0.0, 2.0, f32::INFINITY], &[0.0], &[], &[2.0]],
        ];
        for runs in cases {
            let mut expect: Vec<u32> = runs
                .iter()
                .flat_map(|r| r.iter().map(|v| v.to_bits()))
                .collect();
            expect.sort_by(|a, b| f32::from_bits(*a).total_cmp(&f32::from_bits(*b)));
            merge4_into(runs, &mut scratch, &mut out, usize::MAX);
            let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect);
            // A limit yields the prefix — how the backend drops lane padding.
            merge4_into(runs, &mut scratch, &mut out, 2);
            let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect[..expect.len().min(2)]);
        }
    }

    #[test]
    fn sentinel_colliding_nan_takes_the_fallback() {
        // The all-ones-payload NaN is the one value whose key equals the
        // in-band sentinel; the merge must survive it at a run's tail.
        let top_nan = f32::from_bits(0x7fff_ffff);
        assert_eq!(crate::radix::key_of(top_nan), u32::MAX);
        let runs: [&[f32]; 4] = [&[1.0, top_nan], &[2.0], &[0.5, 3.0], &[]];
        let out = merge4_plain(runs);
        let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            got,
            vec![
                0.5f32.to_bits(),
                1.0f32.to_bits(),
                2.0f32.to_bits(),
                3.0f32.to_bits(),
                0x7fff_ffff,
            ]
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_input_in_debug() {
        let bad = [3.0f32, 1.0];
        let _ = merge4([&bad, &[], &[], &[]], &mut machine(), [0; 4], 1 << 20);
    }
}
