use core::fmt;

/// One RGBA texel: four 32-bit float channels.
///
/// Current-generation (2004) GPUs store data in four-channel textures with
/// 32-bit IEEE single precision per channel (paper §4.1). The reproduction
/// packs one stream value per channel, so a `W×H` surface holds `4·W·H`
/// values.
pub type Texel = [f32; 4];

/// Storage format of a texture in video memory.
///
/// 2004 GPUs support both 32-bit and 16-bit float channels; half-precision
/// textures halve storage and — more importantly for the co-processor
/// protocol — halve CPU↔GPU bus traffic. The paper's input stream is
/// 16-bit, so `Rgba16F` uploads are lossless for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TextureFormat {
    /// Four IEEE binary32 channels: 16 bytes per texel.
    #[default]
    Rgba32F,
    /// Four IEEE binary16 channels: 8 bytes per texel. Values are
    /// quantized to half precision on upload.
    Rgba16F,
}

impl TextureFormat {
    /// Bytes per texel in this format.
    #[inline]
    pub const fn bytes_per_texel(self) -> u64 {
        match self {
            TextureFormat::Rgba32F => 16,
            TextureFormat::Rgba16F => 8,
        }
    }
}

/// A color channel of an RGBA surface.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Channel {
    /// Red (channel 0).
    R = 0,
    /// Green (channel 1).
    G = 1,
    /// Blue (channel 2).
    B = 2,
    /// Alpha (channel 3).
    A = 3,
}

impl Channel {
    /// All four channels in storage order.
    pub const ALL: [Channel; 4] = [Channel::R, Channel::G, Channel::B, Channel::A];

    /// The channel's index into a [`Texel`].
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// A 2-D array of RGBA texels — the storage behind both textures and the
/// framebuffer.
///
/// Texels are stored row-major: texel `(x, y)` lives at index `y * width + x`.
/// The paper's algorithms map a 1-D sequence of values onto a surface in
/// exactly this order, so "a block of `B` consecutive values" is a run of
/// `B` texels along a row (wrapping to the next row), which is what makes the
/// two-case `SortStep` layout of Figure 2 work.
#[derive(Clone, PartialEq)]
pub struct Surface {
    width: u32,
    height: u32,
    texels: Vec<Texel>,
}

impl Surface {
    /// Creates a surface of the given dimensions, cleared to zero.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "surface dimensions must be non-zero"
        );
        Surface {
            width,
            height,
            texels: vec![[0.0; 4]; width as usize * height as usize],
        }
    }

    /// Creates a surface filled with a constant texel.
    pub fn filled(width: u32, height: u32, fill: Texel) -> Self {
        assert!(
            width > 0 && height > 0,
            "surface dimensions must be non-zero"
        );
        Surface {
            width,
            height,
            texels: vec![fill; width as usize * height as usize],
        }
    }

    /// Width in texels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in texels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of texels (`width × height`).
    #[inline]
    pub fn texel_count(&self) -> usize {
        self.texels.len()
    }

    /// Storage footprint in bytes (16 bytes per RGBA-f32 texel).
    #[inline]
    pub fn byte_size(&self) -> u64 {
        self.texels.len() as u64 * 16
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(
            x < self.width && y < self.height,
            "texel ({x},{y}) out of bounds"
        );
        y as usize * self.width as usize + x as usize
    }

    /// Reads the texel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Texel {
        self.texels[self.idx(x, y)]
    }

    /// Writes the texel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, t: Texel) {
        let i = self.idx(x, y);
        self.texels[i] = t;
    }

    /// Reads the texel at `(x, y)` with coordinates clamped to the surface
    /// (GL `CLAMP_TO_EDGE` sampling).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> Texel {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Reads the texel at flat row-major index `i`.
    #[inline]
    pub fn get_flat(&self, i: usize) -> Texel {
        self.texels[i]
    }

    /// Writes the texel at flat row-major index `i`.
    #[inline]
    pub fn set_flat(&mut self, i: usize, t: Texel) {
        self.texels[i] = t;
    }

    /// The raw texel slice, row-major.
    #[inline]
    pub fn texels(&self) -> &[Texel] {
        &self.texels
    }

    /// The raw texel slice, mutable.
    #[inline]
    pub fn texels_mut(&mut self) -> &mut [Texel] {
        &mut self.texels
    }

    /// Extracts one channel as a flat row-major vector of length
    /// `width × height`.
    pub fn channel(&self, ch: Channel) -> Vec<f32> {
        let i = ch.index();
        self.texels.iter().map(|t| t[i]).collect()
    }

    /// Overwrites one channel from a flat row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width × height`.
    pub fn set_channel(&mut self, ch: Channel, data: &[f32]) {
        assert_eq!(
            data.len(),
            self.texels.len(),
            "channel data length must equal texel count"
        );
        let i = ch.index();
        for (t, &v) in self.texels.iter_mut().zip(data) {
            t[i] = v;
        }
    }

    /// Builds a surface from four equally long channel slices
    /// (`R, G, B, A`), laid out row-major into a `width`-wide surface.
    ///
    /// # Panics
    ///
    /// Panics if the channel lengths differ, are not a multiple of `width`,
    /// or are zero.
    pub fn from_channels(width: u32, channels: [&[f32]; 4]) -> Self {
        let len = channels[0].len();
        assert!(len > 0, "channels must be non-empty");
        assert!(
            channels.iter().all(|c| c.len() == len),
            "all four channels must have equal length"
        );
        assert_eq!(
            len as u32 % width,
            0,
            "channel length must be a multiple of width"
        );
        let height = len as u32 / width;
        let mut s = Surface::new(width, height);
        for (i, t) in s.texels.iter_mut().enumerate() {
            *t = [
                channels[0][i],
                channels[1][i],
                channels[2][i],
                channels[3][i],
            ];
        }
        s
    }
}

impl fmt::Debug for Surface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Surface")
            .field("width", &self.width)
            .field("height", &self.height)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let s = Surface::new(3, 2);
        assert_eq!(s.texel_count(), 6);
        assert_eq!(s.byte_size(), 96);
        assert!(s.texels().iter().all(|t| *t == [0.0; 4]));
    }

    #[test]
    fn get_set_round_trip() {
        let mut s = Surface::new(4, 4);
        s.set(2, 3, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.get(2, 3), [1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.get_flat(3 * 4 + 2), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn row_major_layout() {
        let mut s = Surface::new(4, 2);
        for y in 0..2 {
            for x in 0..4 {
                s.set(x, y, [(y * 4 + x) as f32, 0.0, 0.0, 0.0]);
            }
        }
        let r = s.channel(Channel::R);
        assert_eq!(r, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn clamped_sampling() {
        let mut s = Surface::new(2, 2);
        s.set(0, 0, [9.0, 0.0, 0.0, 0.0]);
        s.set(1, 1, [7.0, 0.0, 0.0, 0.0]);
        assert_eq!(s.get_clamped(-5, -5)[0], 9.0);
        assert_eq!(s.get_clamped(100, 100)[0], 7.0);
    }

    #[test]
    fn channel_pack_unpack() {
        let r = [1.0, 2.0, 3.0, 4.0];
        let g = [5.0, 6.0, 7.0, 8.0];
        let b = [9.0, 10.0, 11.0, 12.0];
        let a = [13.0, 14.0, 15.0, 16.0];
        let s = Surface::from_channels(2, [&r, &g, &b, &a]);
        assert_eq!(s.width(), 2);
        assert_eq!(s.height(), 2);
        assert_eq!(s.channel(Channel::R), r.to_vec());
        assert_eq!(s.channel(Channel::G), g.to_vec());
        assert_eq!(s.channel(Channel::B), b.to_vec());
        assert_eq!(s.channel(Channel::A), a.to_vec());
        assert_eq!(s.get(1, 1), [4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn set_channel_only_touches_one_lane() {
        let mut s = Surface::filled(2, 1, [1.0, 2.0, 3.0, 4.0]);
        s.set_channel(Channel::B, &[30.0, 31.0]);
        assert_eq!(s.get(0, 0), [1.0, 2.0, 30.0, 4.0]);
        assert_eq!(s.get(1, 0), [1.0, 2.0, 31.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let _ = Surface::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "multiple of width")]
    fn from_channels_rejects_ragged_rows() {
        let c = [1.0, 2.0, 3.0];
        let _ = Surface::from_channels(2, [&c, &c, &c, &c]);
    }
}
