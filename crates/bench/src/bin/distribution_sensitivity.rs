//! **E12 (extension)** — input-distribution sensitivity of the engines.
//!
//! §3.2 attributes CPU sorting cost to cache misses and branch
//! mispredictions — both *data-dependent*. A sorting network executes the
//! identical comparator schedule on every input, so the paper's GPU sorter
//! is **data-oblivious**: its time is a function of `n` alone. This harness
//! measures all engines across distributions; the GPU column is flat to
//! within pass-count noise, while quicksort swings with branch
//! predictability and duplicate structure.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin distribution_sensitivity [-- --n 1048576 --csv]
//! ```

use gsm_bench::{human_n, ms, Args, Table};
use gsm_sort::{SortEngine, Sorter};
use gsm_stream::{GaussianGen, NearlySortedGen, ParetoGen, UniformGen, ZipfGen};

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 1 << 20);

    let distributions: Vec<(&str, Vec<f32>)> = vec![
        ("uniform", UniformGen::new(1, 0.0, 1.0e4).take(n).collect()),
        (
            "gaussian",
            GaussianGen::new(2, 5000.0, 500.0).take(n).collect(),
        ),
        (
            "zipf (dup-heavy)",
            ZipfGen::new(3, 1 << 16, 1.1).take(n).collect(),
        ),
        (
            "pareto (heavy tail)",
            ParetoGen::new(4, 1.0, 1.3).take(n).collect(),
        ),
        ("ascending", (0..n).map(|i| i as f32).collect()),
        ("descending", (0..n).rev().map(|i| i as f32).collect()),
        (
            "nearly sorted (1%)",
            NearlySortedGen::new(5, n, 0.01).collect(),
        ),
        ("constant", vec![7.0; n]),
    ];

    println!(
        "# E12: distribution sensitivity at n = {} (simulated ms)",
        human_n(n)
    );
    println!("# the sorting network is data-oblivious; the CPU baselines are not\n");
    let mut table = Table::new([
        "distribution",
        "GPU PBSN ms",
        "CPU quicksort ms",
        "CPU qsort ms",
        "quicksort mispredict %",
    ]);

    let mut gpu_times = Vec::new();
    for (name, data) in &distributions {
        let gpu = Sorter::new(SortEngine::GpuPbsn).sort(data);
        let intel = Sorter::new(SortEngine::CpuQuicksort).sort(data);
        let qsort = Sorter::new(SortEngine::CpuQsort).sort(data);
        gpu_times.push(gpu.total_time.as_secs());
        table.row([
            name.to_string(),
            ms(gpu.total_time),
            ms(intel.total_time),
            ms(qsort.total_time),
            format!(
                "{:.1}",
                100.0 * intel.cpu_stats.expect("cpu engine").mispredict_rate()
            ),
        ]);
    }
    table.print(csv);

    let spread = gpu_times.iter().cloned().fold(f64::MIN, f64::max)
        / gpu_times.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\n# GPU max/min across distributions: {spread:.3}x (data-oblivious; exactly 1.0 up to"
    );
    println!("# padding differences). Quicksort swings with predictability: sorted inputs sail,");
    println!("# random inputs mispredict ~1/3 of comparisons.");
}
