//! **E10 (extension)** — the paper's §4.5 growth-rate claim:
//!
//! *"The performance of our algorithm is purely based on the performance of
//! the underlying rasterization hardware, and is improving at a rate faster
//! than the Moore's law for CPUs. … we expect that the performance gap
//! between our GPU-based sorting algorithm and current CPU-based algorithms
//! would increase on future generations of GPUs and CPUs."*
//!
//! We parameterize the cost models with the next hardware generation that
//! actually shipped (GeForce 7800 GTX, mid-2005: 24 pipes @ 430 MHz,
//! 54.4 GB/s, PCIe ×16; Pentium 4 "Prescott" 3.8 GHz: same
//! microarchitecture, ~12 % clock bump) and re-run the Figure 3 headline
//! point. The GPU side scales with pipes × clock; the CPU side only with
//! clock — reproducing the widening-gap prediction.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin future_hw [-- --n 4194304 --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_gpu::{BusModel, GpuCostModel};
use gsm_model::{Hertz, SimTime};
use gsm_sort::{SortEngine, Sorter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 7800 GTX pairs with PCIe ×16 (~3 GB/s effective) rather than AGP.
fn pcie_x16() -> BusModel {
    BusModel {
        effective_bandwidth: 3.0e9,
        latency: SimTime::from_micros(8.0),
    }
}

/// Pentium 4 "Prescott" 3.8 GHz: the fastest NetBurst part ever shipped —
/// same cache geometry and penalties, 11.8 % more clock.
fn pentium4_3800() -> gsm_cpu::CpuCostModel {
    let mut m = gsm_cpu::CpuCostModel::pentium4_3400();
    m.clock = Hertz::from_ghz(3.8);
    m
}

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 4 << 20);

    let mut rng = StdRng::seed_from_u64(9);
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(0.0..1.0e6)).collect();

    // 2004 generation.
    let gpu_2004 = Sorter::new(SortEngine::GpuPbsn).sort(&data).total_time;
    let cpu_2004 = Sorter::new(SortEngine::CpuQuicksort).sort(&data).total_time;

    // 2005 generation.
    let _ = pcie_x16(); // the transfer term is negligible either way (Fig. 4)
    let gpu_2005 = Sorter::new(SortEngine::GpuPbsn)
        .with_gpu_model(GpuCostModel::geforce_7800_gtx())
        .sort(&data)
        .total_time;
    let cpu_2005 = Sorter::new(SortEngine::CpuQuicksort)
        .with_cpu_model(pentium4_3800())
        .sort(&data)
        .total_time;

    println!(
        "# E10: generation scaling at n = {} (simulated ms)\n",
        human_n(n)
    );
    let mut table = Table::new(["generation", "GPU PBSN ms", "CPU quicksort ms", "GPU/CPU"]);
    table.row([
        "2004 (6800 Ultra / P4 3.4)".to_string(),
        format!("{:.3}", gpu_2004.as_millis()),
        format!("{:.3}", cpu_2004.as_millis()),
        format!("{:.2}", gpu_2004.as_secs() / cpu_2004.as_secs()),
    ]);
    table.row([
        "2005 (7800 GTX / P4 3.8)".to_string(),
        format!("{:.3}", gpu_2005.as_millis()),
        format!("{:.3}", cpu_2005.as_millis()),
        format!("{:.2}", gpu_2005.as_secs() / cpu_2005.as_secs()),
    ]);
    table.print(csv);

    let gpu_speedup = gpu_2004.as_secs() / gpu_2005.as_secs();
    let cpu_speedup = cpu_2004.as_secs() / cpu_2005.as_secs();
    println!("\n# one generation: GPU x{gpu_speedup:.2} (pipes x clock), CPU x{cpu_speedup:.2} (clock only)");
    println!("# the GPU/CPU ratio drops accordingly — the paper's widening-gap prediction (§4.5).");
    assert!(
        gpu_speedup > cpu_speedup,
        "the reproduction must show the gap widening"
    );
}
