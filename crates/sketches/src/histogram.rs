//! Sorted-run → histogram and rank-sampled summaries (paper §3.2, step 1 of
//! the window-based algorithms).
//!
//! *"For each window, the elements are ordered by sorting them and a
//! histogram is computed … The frequency computation algorithms use the
//! entire histogram along with the frequencies of the elements. On the other
//! hand, the quantile computation algorithms compute a subset of histogram
//! elements by sampling the sorted sequence at the rate of at least εW …
//! and maintain the minimum and maximum ranks of the elements."*

use crate::summary::QuantileEntry;

/// Run-length encodes a sorted run into `(value, count)` pairs.
///
/// # Panics
///
/// Panics in debug builds if the input is not sorted.
pub fn histogram(sorted: &[f32]) -> Vec<(f32, u64)> {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let mut out: Vec<(f32, u64)> = Vec::new();
    for &v in sorted {
        match out.last_mut() {
            Some((last, c)) if *last == v => *c += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

/// Samples a sorted window into an ε-approximate quantile summary
/// (GK04's local summary): the elements of 1-based rank
/// `1, ⌈εS⌉, ⌈2εS⌉, …, S`, each with its exact rank.
///
/// Any rank query against the result errs by less than `ε·S`.
///
/// # Panics
///
/// Panics if `sorted` is empty, `eps` is outside `(0, 1]`, or (debug) the
/// input is not sorted.
pub fn sample_sorted(sorted: &[f32], eps: f64) -> Vec<QuantileEntry> {
    assert!(!sorted.is_empty(), "cannot sample an empty window");
    assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1], got {eps}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );

    let s = sorted.len();
    let stride = ((eps * s as f64).ceil() as usize).max(1);
    let mut entries = Vec::with_capacity(s / stride + 2);
    entries.push(QuantileEntry::exact(sorted[0], 1));
    let mut rank = stride;
    while rank < s {
        // Ranks are 1-based: rank r is sorted[r-1]. Skip rank 1 duplicates.
        if rank > 1 {
            entries.push(QuantileEntry::exact(sorted[rank - 1], rank as u64));
        }
        rank += stride;
    }
    if s > 1 {
        entries.push(QuantileEntry::exact(sorted[s - 1], s as u64));
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_runs() {
        let h = histogram(&[1.0, 1.0, 2.0, 3.0, 3.0, 3.0]);
        assert_eq!(h, vec![(1.0, 2), (2.0, 1), (3.0, 3)]);
    }

    #[test]
    fn histogram_of_distinct_and_empty() {
        assert_eq!(histogram(&[]), vec![]);
        assert_eq!(histogram(&[5.0]), vec![(5.0, 1)]);
        let h = histogram(&[1.0, 2.0, 3.0]);
        assert!(h.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn histogram_total_equals_input_len() {
        let data: Vec<f32> = (0..1000).map(|i| ((i * 7) % 50) as f32).collect();
        let mut sorted = data.clone();
        sorted.sort_by(f32::total_cmp);
        let h = histogram(&sorted);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<u64>(), 1000);
        // Histogram values strictly increasing.
        assert!(h.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sample_includes_ends_and_exact_ranks() {
        let sorted: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let entries = sample_sorted(&sorted, 0.1);
        assert_eq!(entries.first().unwrap().value, 1.0);
        assert_eq!(entries.last().unwrap().value, 100.0);
        for e in &entries {
            assert_eq!(e.rmin, e.rmax);
            assert_eq!(sorted[e.rmin as usize - 1], e.value);
        }
    }

    #[test]
    fn sample_rank_gaps_bounded_by_eps_s() {
        let sorted: Vec<f32> = (1..=997).map(|i| i as f32).collect();
        for eps in [0.5, 0.1, 0.03, 0.001] {
            let entries = sample_sorted(&sorted, eps);
            let bound = (eps * sorted.len() as f64).ceil() as u64;
            let mut prev = 0u64;
            for e in &entries {
                assert!(
                    e.rmin - prev <= bound,
                    "gap {} > {bound} at eps={eps}",
                    e.rmin - prev
                );
                prev = e.rmin;
            }
            assert_eq!(prev, sorted.len() as u64, "last rank must be S");
        }
    }

    #[test]
    fn sample_size_is_about_one_over_eps() {
        let sorted: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let entries = sample_sorted(&sorted, 0.01);
        assert!(entries.len() <= 102, "got {}", entries.len());
        assert!(entries.len() >= 100);
    }

    #[test]
    fn sample_tiny_windows() {
        assert_eq!(sample_sorted(&[7.0], 0.1).len(), 1);
        let two = sample_sorted(&[1.0, 2.0], 0.5);
        assert_eq!(two.first().unwrap().value, 1.0);
        assert_eq!(two.last().unwrap().value, 2.0);
    }
}
