//! **Recovery gate** — the crash-recovery fault matrix behind CI's
//! `fault-matrix` job.
//!
//! Every adversarial generator family is ingested into a durable
//! [`gsm_dsms::StreamEngine`] (segmented WAL + incremental checkpoints),
//! killed at configured crash points, damaged by one fault from the seeded
//! [`gsm_durable::FaultPlan`] taxonomy (torn final record, truncated
//! segment, payload bit flip, crash-between-checkpoint-and-truncate), and
//! recovered. Each cell of the engine × shard × fault grid must recover
//! **byte-identically** (FNV answer fingerprint) to an uncrashed durable
//! run over the recovered prefix, and every injected corruption must be
//! **detected** — never silently replayed.
//!
//! The run writes `results/FAULT_matrix.json` (versioned envelope) with
//! one outcome per family. On any failing cell it dumps the flight
//! recorder to `results/FAULT_postmortem.json` and exits nonzero; the
//! failing cell reproduces deterministically from its logged
//! `(family, seed, plan seed)` triple:
//!
//! ```text
//! cargo run --release -p gsm-bench --bin fault_matrix [-- --n 4096
//!     --seed 42 --family zipf_skew --plan-seed 3506094565
//!     --out results/FAULT_matrix.json
//!     --postmortem-out results/FAULT_postmortem.json]
//! ```

use gsm_bench::{envelope_json, write_result, Args, Table};
use gsm_obs::Recorder;
use gsm_verify::{
    record_failure_lines, verify_family_recovered, DurableFamilyOutcome, DurableVerifyConfig,
    Family, StreamSpec, VerifyConfig,
};

#[derive(serde::Serialize)]
struct Report {
    n: u64,
    seed: u64,
    plan_seed: u64,
    families: u64,
    cells_per_family: u64,
    passed: bool,
    outcomes: Vec<DurableFamilyOutcome>,
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get_num("n", 4096);
    let seed: u64 = args.get_num("seed", 42);
    let out = args
        .get("out")
        .unwrap_or("results/FAULT_matrix.json")
        .to_string();
    let postmortem_out = args
        .get("postmortem-out")
        .unwrap_or("results/FAULT_postmortem.json")
        .to_string();
    let only: Option<Family> = args
        .get("family")
        .map(|name| Family::from_name(name).unwrap_or_else(|| panic!("unknown family `{name}`")));

    let cfg = VerifyConfig::default();
    let mut dcfg = DurableVerifyConfig::default();
    dcfg.plan_seed = args.get_num("plan-seed", dcfg.plan_seed);
    let families: Vec<Family> = match only {
        Some(f) => vec![f],
        None => Family::ALL.to_vec(),
    };
    let cells_per_family =
        (cfg.engines.len() * dcfg.shards.len() * gsm_durable::Fault::ALL.len()) as u64;

    println!(
        "# fault matrix: {} families x {cells_per_family} cells \
         ({} engines x shards {:?} x {} faults), n={n}, seed={seed}, plan_seed={}",
        families.len(),
        cfg.engines.len(),
        dcfg.shards,
        gsm_durable::Fault::ALL.len(),
        dcfg.plan_seed
    );
    let rec = Recorder::enabled();
    let mut outcomes: Vec<DurableFamilyOutcome> = Vec::new();
    let mut failed = false;
    let mut table = Table::new([
        "family",
        "cells",
        "identical",
        "detected",
        "replayed",
        "skipped",
    ]);
    for &family in &families {
        let spec = StreamSpec {
            family,
            seed,
            n,
            window: 1024,
        };
        let outcome = verify_family_recovered(&spec, &cfg, &dcfg);
        let identical = outcome.runs.iter().filter(|r| r.byte_identical).count();
        let detected = outcome.runs.iter().filter(|r| r.detection_ok).count();
        let replayed: u64 = outcome.runs.iter().map(|r| r.replayed_records).sum();
        let skipped: u64 = outcome.runs.iter().map(|r| r.skipped_records).sum();
        table.row([
            family.name().to_string(),
            outcome.runs.len().to_string(),
            format!("{identical}/{}", outcome.runs.len()),
            format!("{detected}/{}", outcome.runs.len()),
            replayed.to_string(),
            skipped.to_string(),
        ]);
        if !outcome.passed() {
            failed = true;
            record_failure_lines(&rec, &outcome.failures());
        }
        outcomes.push(outcome);
    }
    table.print(args.flag("csv"));

    let report = Report {
        n: n as u64,
        seed,
        plan_seed: dcfg.plan_seed,
        families: families.len() as u64,
        cells_per_family,
        passed: !failed,
        outcomes,
    };
    let payload = serde_json::to_string(&report).expect("report serializes infallibly");
    write_result(&out, &envelope_json("gsm-bench/fault_matrix", &payload));
    println!("wrote {out}");

    if failed {
        for outcome in report.outcomes.iter().filter(|o| !o.passed()) {
            for f in outcome.failures() {
                eprintln!("RECOVERY VIOLATION: {f}");
            }
        }
        write_result(
            &postmortem_out,
            &envelope_json(
                "gsm-bench/fault_matrix",
                &rec.postmortem_json("fault matrix found a recovery violation"),
            ),
        );
        eprintln!("flight-recorder postmortem written to {postmortem_out}");
        std::process::exit(1);
    }
    println!("every cell recovered byte-identically and detected its fault");
}
