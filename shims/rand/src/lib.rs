//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over primitive
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! statistically strong for the test workloads, though the streams are
//! (deliberately) not bit-compatible with upstream `rand`'s `StdRng`.

#![allow(clippy::all)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, `lo..hi`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`'s bits.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a half-open range. The single blanket
/// [`SampleRange`] impl below pins `T` to the range's element type during
/// inference (mirroring upstream `rand`, where `0.02` in `-vol..vol`
/// correctly infers `f32` from the sample's use site).
pub trait SampleUniform: PartialOrd + Sized {
    /// A uniform sample from `[lo, hi)`.
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample an empty range");
        T::sample_uniform(rng, self.start, self.end)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span / 2^64 — negligible for the spans
                // the workspace samples (all far below 2^32).
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        // 24 uniform mantissa bits -> [0, 1), then affine map with a guard
        // against rounding up onto the excluded endpoint.
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        let v = lo + (hi - lo) * unit;
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = lo + (hi - lo) * unit;
        if v < hi {
            v
        } else {
            lo
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..16).map(|_| a.random_range(0u32..1_000_000)).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.random_range(0u32..1_000_000)).collect();
        let zs: Vec<u32> = (0..16).map(|_| c.random_range(0u32..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.random_range(-5i32..17);
            assert!((-5..17).contains(&i));
            let f = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let d = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
        let mean: f64 = (0..100_000)
            .map(|_| rng.random_range(0.0f64..1.0))
            .sum::<f64>()
            / 100_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}
