//! Checkpoint/restore: every summary serializes (serde) and answers
//! identically after a JSON round trip — the persistence story a DSMS
//! needs to survive restarts without losing stream history.

use gsm_sketch::{
    BitPrefixHierarchy, ExpHistogram, GkSummary, HhhSummary, LossyCounting, MisraGries,
    SlidingFrequency, SlidingQuantile,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.random_range(0..4) == 0 {
                rng.random_range(0..16) as f32
            } else {
                rng.random_range(0..10_000) as f32
            }
        })
        .collect()
}

fn sorted_chunks(data: &[f32], w: usize) -> Vec<Vec<f32>> {
    data.chunks(w)
        .map(|c| {
            let mut v = c.to_vec();
            v.sort_by(f32::total_cmp);
            v
        })
        .collect()
}

#[test]
fn gk_summary_round_trips() {
    let mut gk = GkSummary::new(0.01);
    for &v in &stream(20_000, 1) {
        gk.insert(v);
    }
    let json = serde_json::to_string(&gk).expect("serialize");
    let mut restored: GkSummary = serde_json::from_str(&json).expect("deserialize");
    for phi in [0.1, 0.5, 0.9] {
        assert_eq!(gk.query(phi), restored.query(phi));
    }
    // The restored summary keeps accepting stream data.
    restored.insert(1.0);
    assert_eq!(restored.count(), gk.count() + 1);
}

#[test]
fn lossy_counting_round_trips() {
    let mut lc = LossyCounting::new(0.001);
    for w in sorted_chunks(&stream(50_000, 2), lc.window()) {
        lc.push_sorted_window(&w);
    }
    let json = serde_json::to_string(&lc).expect("serialize");
    let restored: LossyCounting = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(lc.heavy_hitters(0.01), restored.heavy_hitters(0.01));
    for v in 0..16 {
        assert_eq!(lc.estimate(v as f32), restored.estimate(v as f32));
    }
}

#[test]
fn exp_histogram_round_trips() {
    let mut eh = ExpHistogram::new(0.01, 1024, 40_000);
    for w in sorted_chunks(&stream(40_000, 3), 1024) {
        eh.push_sorted_window(&w);
    }
    let json = serde_json::to_string(&eh).expect("serialize");
    let mut restored: ExpHistogram = serde_json::from_str(&json).expect("deserialize");
    for phi in [0.25, 0.5, 0.75] {
        assert_eq!(eh.query(phi), restored.query(phi));
    }
    // Continue streaming after restore.
    let extra = sorted_chunks(&stream(2048, 4), 1024);
    for w in extra {
        restored.push_sorted_window(&w);
    }
    assert_eq!(restored.count(), 42_048);
}

#[test]
fn misra_gries_round_trips() {
    let mut mg = MisraGries::new(99);
    for &v in &stream(30_000, 5) {
        mg.insert(v);
    }
    let json = serde_json::to_string(&mg).expect("serialize");
    let restored: MisraGries = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(mg.candidates(1), restored.candidates(1));
}

#[test]
fn hhh_round_trips() {
    let mut hhh = HhhSummary::new(0.001, BitPrefixHierarchy::new(vec![4, 8]));
    for w in sorted_chunks(&stream(30_000, 6), hhh.window()) {
        hhh.push_sorted_window(&w);
    }
    let json = serde_json::to_string(&hhh).expect("serialize");
    let restored: HhhSummary = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(hhh.query(0.05), restored.query(0.05));
}

#[test]
fn sliding_summaries_round_trip() {
    let data = stream(30_000, 7);

    let mut sq = SlidingQuantile::new(0.02, 10_000);
    for w in sorted_chunks(&data, sq.block_size()) {
        sq.push_sorted_block(&w);
    }
    let json = serde_json::to_string(&sq).expect("serialize");
    let mut rq: SlidingQuantile = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(sq.query(0.5), rq.query(0.5));
    assert_eq!(sq.covered(), rq.covered());

    let mut sf = SlidingFrequency::new(0.02, 10_000);
    for w in sorted_chunks(&data, sf.block_size()) {
        sf.push_sorted_block(&w);
    }
    let json = serde_json::to_string(&sf).expect("serialize");
    let rf: SlidingFrequency = serde_json::from_str(&json).expect("deserialize");
    for v in 0..16 {
        assert_eq!(sf.estimate(v as f32), rf.estimate(v as f32));
    }
}

#[test]
fn checkpoint_is_compact() {
    // The whole point of a summary: its checkpoint is small even after a
    // large stream.
    let mut lc = LossyCounting::new(0.001);
    let data = stream(200_000, 8);
    for w in sorted_chunks(&data, lc.window()) {
        lc.push_sorted_window(&w);
    }
    let json = serde_json::to_string(&lc).expect("serialize");
    let raw_bytes = data.len() * 4;
    assert!(
        json.len() < raw_bytes / 4,
        "checkpoint {} B should be far below the {} B stream",
        json.len(),
        raw_bytes
    );
}
