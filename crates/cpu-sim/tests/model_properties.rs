//! Property tests for the CPU timing model.

use gsm_cpu::{Cache, CacheConfig, CpuCostModel, Machine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hits + misses always equals the access count, for arbitrary traces.
    #[test]
    fn cache_accounting_is_total(addrs in prop::collection::vec(0u64..1_000_000, 1..2000)) {
        let mut c = Cache::new(CacheConfig { capacity: 4096, line_bytes: 64, associativity: 4 });
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    /// Accessing the same address twice in a row always hits the second
    /// time (no trace can evict between back-to-back accesses).
    #[test]
    fn immediate_reuse_hits(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig { capacity: 4096, line_bytes: 64, associativity: 4 });
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {} must hit on immediate reuse", a);
        }
    }

    /// A larger cache never misses more than a smaller one of the same
    /// geometry on the same trace (inclusion property of LRU).
    #[test]
    fn lru_miss_count_is_monotone_in_capacity(
        addrs in prop::collection::vec(0u64..100_000, 1..2000),
    ) {
        let mut small = Cache::new(CacheConfig { capacity: 2048, line_bytes: 64, associativity: 32 });
        let mut large = Cache::new(CacheConfig { capacity: 8192, line_bytes: 64, associativity: 128 });
        for &a in &addrs {
            small.access(a);
            large.access(a);
        }
        // Full associativity (sets = 1) makes LRU a stack algorithm.
        prop_assert!(large.misses() <= small.misses());
    }

    /// Machine cycle counts are reproducible: the same trace gives the same
    /// cycles.
    #[test]
    fn machine_is_deterministic(
        ops in prop::collection::vec((0u64..100_000, 0u8..3), 1..1000),
    ) {
        let run = || {
            let mut m = Machine::new(CpuCostModel::pentium4_3400());
            for &(addr, kind) in &ops {
                match kind {
                    0 => m.read(addr),
                    1 => m.write(addr),
                    _ => m.branch(addr % 64, addr % 3 == 0),
                }
            }
            m.cycles()
        };
        prop_assert_eq!(run(), run());
    }
}

/// Analytic check: strided sweeps have exactly predictable miss counts.
#[test]
fn strided_sweep_miss_counts_match_analytic_model() {
    for stride_elems in [1usize, 2, 4, 8, 16, 32] {
        let mut c = Cache::new(CacheConfig {
            capacity: 8 << 10,
            line_bytes: 64,
            associativity: 8,
        });
        let elems = 64 << 10; // 256 KB touched: far beyond the 8 KB cache
        let mut accesses = 0u64;
        let mut i = 0usize;
        while i < elems {
            c.access((i * 4) as u64);
            accesses += 1;
            i += stride_elems;
        }
        // Distinct lines touched per access: stride of 16 f32s = 64 B = one
        // line per access; smaller strides share lines.
        let lines_per_access = (stride_elems * 4).min(64) as f64 / 64.0;
        let expected = (accesses as f64 * lines_per_access).round() as u64;
        assert!(
            (c.misses() as i64 - expected as i64).unsigned_abs() <= expected / 50 + 2,
            "stride {stride_elems}: misses {} vs expected {expected}",
            c.misses()
        );
    }
}
