//! Immutable point-in-time query state, published for concurrent readers.
//!
//! The serving problem is a reader/writer split: ingestion must keep
//! absorbing windows at stream rate while an arbitrary number of query
//! threads read summaries. Letting readers borrow the live pipeline would
//! serialize them behind the writer (and vice versa — a slow reader would
//! stall a window seal). Instead the engine *publishes*: each time enough
//! windows have sealed it clones the absorbed summary state into an
//! [`EngineSnapshot`] — merged across shards, frozen, immutable — and swaps
//! it into a [`SnapshotRegistry`] behind an epoch counter. Readers clone an
//! `Arc` out of the registry (a sub-microsecond pointer copy under a lock
//! held for that copy only, never the ingest path's locks) and then answer
//! any number of queries against state that can no longer change.
//!
//! Two consequences worth naming:
//!
//! * **Snapshots cover sealed windows only.** Publication never flushes —
//!   a flush would absorb the partial tail window and move every
//!   subsequent window boundary, changing answers relative to the
//!   flush-free timeline. A snapshot therefore answers over
//!   [`EngineSnapshot::absorbed`] elements, not everything pushed.
//! * **A held snapshot never blocks a seal.** The registry swap replaces
//!   the `Arc`; readers still holding the previous epoch keep a fully
//!   functional (merely older) view, and the writer never waits for them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gsm_core::HhhEntry;

use crate::engine::{QueryAnswer, QueryRequest, QuerySketch};

/// What a registered continuous query answers — the snapshot-side mirror
/// of the engine's (private) query specs, exposed so serving layers can
/// validate and route requests without holding an engine reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    /// ε-approximate quantiles over the whole stream.
    Quantile,
    /// ε-approximate frequencies / heavy hitters over the whole stream.
    Frequency,
    /// Hierarchical heavy hitters over the whole stream.
    Hhh,
    /// ε-approximate quantiles over a fixed-width sliding window.
    SlidingQuantile,
    /// ε-approximate frequencies over a fixed-width sliding window.
    SlidingFrequency,
}

impl QueryKind {
    /// Stable lower-case name (used by wire protocols and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            QueryKind::Quantile => "quantile",
            QueryKind::Frequency => "frequency",
            QueryKind::Hhh => "hhh",
            QueryKind::SlidingQuantile => "sliding_quantile",
            QueryKind::SlidingFrequency => "sliding_frequency",
        }
    }
}

/// Why a snapshot could not answer a query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The query index is out of range for the registered query set.
    UnknownQuery(usize),
    /// The query exists but answers a different [`QueryKind`].
    WrongKind {
        /// What the caller asked for.
        asked: QueryKind,
        /// What the query actually answers.
        actual: QueryKind,
    },
    /// No window has sealed yet — quantile summaries have no data to rank.
    Empty,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnknownQuery(i) => write!(f, "unknown query index {i}"),
            SnapshotError::WrongKind { asked, actual } => write!(
                f,
                "query answers {} but {} was requested",
                actual.name(),
                asked.name()
            ),
            SnapshotError::Empty => write!(f, "no sealed window yet"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// An immutable point-in-time view of every registered query's summary.
///
/// Built by the engine at publication time: per-shard sketches are merged
/// (shard 0 cloned, the rest folded in sketch-by-sketch — byte-identical
/// to the engine's own query-time merge order), and the result is frozen.
/// All query methods take `&self`; answers from a snapshot are
/// byte-identical to the engine's direct answers over the same sealed
/// windows, because both run the same query code on the same merged state.
pub struct EngineSnapshot {
    pub(crate) epoch: u64,
    pub(crate) pushed: u64,
    pub(crate) absorbed: u64,
    pub(crate) window: usize,
    pub(crate) windows_sealed: u64,
    pub(crate) kinds: Vec<QueryKind>,
    pub(crate) sketches: Vec<QuerySketch>,
}

impl EngineSnapshot {
    /// Publication epoch (1-based; monotone per registry).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Elements pushed into the engine when this snapshot was taken
    /// (including any still-buffered partial window the snapshot does
    /// *not* cover).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Elements the snapshot's summaries actually cover (sealed windows
    /// only).
    pub fn absorbed(&self) -> u64 {
        self.absorbed
    }

    /// The engine's shared window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Sealed windows across all shards at publication time.
    pub fn windows_sealed(&self) -> u64 {
        self.windows_sealed
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of query `id`, if it exists.
    pub fn kind(&self, id: usize) -> Option<QueryKind> {
        self.kinds.get(id).copied()
    }

    fn sketch(&self, id: usize, asked: QueryKind) -> Result<&QuerySketch, SnapshotError> {
        let actual = self
            .kinds
            .get(id)
            .copied()
            .ok_or(SnapshotError::UnknownQuery(id))?;
        if actual != asked {
            return Err(SnapshotError::WrongKind { asked, actual });
        }
        Ok(&self.sketches[id])
    }

    /// Answers a whole-stream φ-quantile query.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`], [`SnapshotError::WrongKind`], or
    /// [`SnapshotError::Empty`] before the first sealed window.
    pub fn quantile(&self, id: usize, phi: f64) -> Result<f32, SnapshotError> {
        let sketch = self.sketch(id, QueryKind::Quantile)?;
        if self.windows_sealed == 0 {
            return Err(SnapshotError::Empty);
        }
        match sketch {
            QuerySketch::Quantile(q) => Ok(q.query(phi)),
            _ => unreachable!("kind table matches sketch layout"),
        }
    }

    /// Answers a whole-stream heavy-hitters query at support `s`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`] or [`SnapshotError::WrongKind`].
    ///
    /// # Panics
    ///
    /// Panics (in the summary) unless `ε < s ≤ 1`.
    pub fn heavy_hitters(&self, id: usize, s: f64) -> Result<Vec<(f32, u64)>, SnapshotError> {
        match self.sketch(id, QueryKind::Frequency)? {
            QuerySketch::Frequency(f) => Ok(f.heavy_hitters(s)),
            _ => unreachable!("kind table matches sketch layout"),
        }
    }

    /// Answers a hierarchical heavy-hitters query at support `s`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`] or [`SnapshotError::WrongKind`].
    ///
    /// # Panics
    ///
    /// Panics (in the summary) unless `ε < s ≤ 1`.
    pub fn hhh(&self, id: usize, s: f64) -> Result<Vec<HhhEntry>, SnapshotError> {
        match self.sketch(id, QueryKind::Hhh)? {
            QuerySketch::Hhh(h) => Ok(h.query(s)),
            _ => unreachable!("kind table matches sketch layout"),
        }
    }

    /// Answers a sliding-window φ-quantile query (frozen form — no
    /// mutation, see [`gsm_sketch::SlidingQuantile::query_frozen`]).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`], [`SnapshotError::WrongKind`], or
    /// [`SnapshotError::Empty`] before the first sealed window.
    pub fn sliding_quantile(&self, id: usize, phi: f64) -> Result<f32, SnapshotError> {
        let sketch = self.sketch(id, QueryKind::SlidingQuantile)?;
        if self.windows_sealed == 0 {
            return Err(SnapshotError::Empty);
        }
        match sketch {
            QuerySketch::SlidingQuantile(s) => Ok(s.query_frozen(phi)),
            _ => unreachable!("kind table matches sketch layout"),
        }
    }

    /// Answers a sliding-window heavy-hitters query at support `s`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`] or [`SnapshotError::WrongKind`].
    ///
    /// # Panics
    ///
    /// Panics (in the summary) unless `ε < s ≤ 1`.
    pub fn sliding_heavy_hitters(
        &self,
        id: usize,
        s: f64,
    ) -> Result<Vec<(f32, u64)>, SnapshotError> {
        match self.sketch(id, QueryKind::SlidingFrequency)? {
            QuerySketch::SlidingFrequency(f) => Ok(f.heavy_hitters(s)),
            _ => unreachable!("kind table matches sketch layout"),
        }
    }

    /// Answers a typed [`QueryRequest`]: the snapshot-side mirror of
    /// [`crate::StreamEngine::request`]. Unlike the engine method, a kind
    /// mismatch is an error, not a panic — serving layers pass requests
    /// straight off the wire.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`], [`SnapshotError::WrongKind`], or
    /// [`SnapshotError::Empty`] for quantile kinds before the first sealed
    /// window.
    ///
    /// # Panics
    ///
    /// Panics (in the summary) on out-of-range support parameters.
    pub fn request(&self, id: usize, req: QueryRequest) -> Result<QueryAnswer, SnapshotError> {
        match req {
            QueryRequest::Quantile { phi } => self.quantile(id, phi).map(QueryAnswer::Quantile),
            QueryRequest::HeavyHitters { support } => self
                .heavy_hitters(id, support)
                .map(QueryAnswer::HeavyHitters),
            QueryRequest::Hhh { support } => self.hhh(id, support).map(QueryAnswer::Hhh),
            QueryRequest::SlidingQuantile { phi } => {
                self.sliding_quantile(id, phi).map(QueryAnswer::Quantile)
            }
            QueryRequest::SlidingFrequency { support } => self
                .sliding_heavy_hitters(id, support)
                .map(QueryAnswer::HeavyHitters),
        }
    }

    /// Generic interface: `param` is φ for quantile kinds, the support `s`
    /// otherwise — the untyped wrapper that maps the registered kind onto
    /// its [`QueryRequest`] variant and delegates to [`Self::request`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownQuery`], or [`SnapshotError::Empty`] for
    /// quantile kinds before the first sealed window.
    ///
    /// # Panics
    ///
    /// Panics (in the summary) on out-of-range support parameters.
    pub fn answer(&self, id: usize, param: f64) -> Result<QueryAnswer, SnapshotError> {
        let kind = self
            .kinds
            .get(id)
            .copied()
            .ok_or(SnapshotError::UnknownQuery(id))?;
        self.request(id, QueryRequest::from_kind(kind, param))
    }
}

/// The epoch-pointer mailbox between one ingesting engine and any number
/// of query readers.
///
/// Internally an `Arc` swap behind a mutex held only for the pointer copy
/// (std has no bare atomic `Arc` swap; the critical section is two pointer
/// moves, so contention is negligible next to query execution). The epoch
/// counter is read lock-free.
pub struct SnapshotRegistry {
    latest: Mutex<Option<Arc<EngineSnapshot>>>,
    epoch: AtomicU64,
}

impl SnapshotRegistry {
    pub(crate) fn new() -> Self {
        SnapshotRegistry {
            latest: Mutex::new(None),
            epoch: AtomicU64::new(0),
        }
    }

    /// The latest published snapshot, or `None` before the first
    /// publication. The returned `Arc` stays valid (and immutable) forever;
    /// holding it never delays the next publication.
    pub fn latest(&self) -> Option<Arc<EngineSnapshot>> {
        self.latest.lock().expect("registry lock").clone()
    }

    /// Epoch of the latest publication (0 before the first). Lock-free.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Installs a new snapshot, assigning it the next epoch.
    ///
    /// The pointer is swapped before the epoch counter advances, so a
    /// reader that observes `epoch() == n` is guaranteed `latest()` is at
    /// least epoch `n` — the counter can be used as a publication signal.
    pub(crate) fn publish(&self, mut snap: EngineSnapshot) -> u64 {
        let mut slot = self.latest.lock().expect("registry lock");
        let epoch = self.epoch.load(Ordering::Acquire) + 1;
        snap.epoch = epoch;
        *slot = Some(Arc::new(snap));
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }
}
