//! Stream trace recording and replay.
//!
//! The paper evaluates on generated data, but a production DSMS replays
//! captured traces. This module stores a value stream (optionally
//! timestamped) in a simple self-describing little-endian binary format so
//! experiments can be frozen to disk and replayed bit-exactly:
//!
//! ```text
//! magic  "GSMT"            4 bytes
//! version u32              (currently 1)
//! flags   u32              bit 0: timestamps present
//! count   u64
//! values  count × f32      (little endian)
//! times   count × f64      (only if flag bit 0)
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::gen::Timestamped;

const MAGIC: &[u8; 4] = b"GSMT";
const VERSION: u32 = 1;

/// A captured stream: values, optionally with arrival timestamps.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    values: Vec<f32>,
    times: Option<Vec<f64>>,
}

impl Trace {
    /// Captures a plain value stream.
    pub fn from_values(values: Vec<f32>) -> Self {
        Trace {
            values,
            times: None,
        }
    }

    /// Captures a timestamped stream.
    pub fn from_events(events: &[Timestamped]) -> Self {
        Trace {
            values: events.iter().map(|e| e.value).collect(),
            times: Some(events.iter().map(|e| e.time).collect()),
        }
    }

    /// The values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The timestamps, if captured.
    pub fn times(&self) -> Option<&[f64]> {
        self.times.as_deref()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the trace holds no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reconstructs timestamped events (requires timestamps).
    ///
    /// # Panics
    ///
    /// Panics if the trace has no timestamps.
    pub fn events(&self) -> Vec<Timestamped> {
        let times = self.times.as_ref().expect("trace has no timestamps");
        times
            .iter()
            .zip(&self.values)
            .map(|(&time, &value)| Timestamped { time, value })
            .collect()
    }

    /// Writes the trace to `path`.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        let flags: u32 = if self.times.is_some() { 1 } else { 0 };
        w.write_all(&flags.to_le_bytes())?;
        w.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for v in &self.values {
            w.write_all(&v.to_le_bytes())?;
        }
        if let Some(times) = &self.times {
            for t in times {
                w.write_all(&t.to_le_bytes())?;
            }
        }
        w.flush()
    }

    /// Reads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for wrong magic/version or truncated files.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a gsm trace",
            ));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let flags = read_u32(&mut r)?;
        let count = read_u64(&mut r)? as usize;
        let mut values = Vec::with_capacity(count);
        let mut buf4 = [0u8; 4];
        for _ in 0..count {
            r.read_exact(&mut buf4)?;
            values.push(f32::from_le_bytes(buf4));
        }
        let times = if flags & 1 != 0 {
            let mut times = Vec::with_capacity(count);
            let mut buf8 = [0u8; 8];
            for _ in 0..count {
                r.read_exact(&mut buf8)?;
                times.push(f64::from_le_bytes(buf8));
            }
            Some(times)
        } else {
            None
        };
        Ok(Trace { values, times })
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{BurstyGen, UniformGen};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gsm-trace-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn value_trace_round_trips() {
        let values: Vec<f32> = UniformGen::unit(1).take(10_000).collect();
        let trace = Trace::from_values(values.clone());
        let path = tmp("values");
        trace.save(&path).expect("save");
        let loaded = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, trace);
        assert_eq!(loaded.values(), &values[..]);
        assert!(loaded.times().is_none());
    }

    #[test]
    fn timestamped_trace_round_trips() {
        let events: Vec<_> = BurstyGen::new(2, 100.0, 10.0).take(5000).collect();
        let trace = Trace::from_events(&events);
        let path = tmp("events");
        trace.save(&path).expect("save");
        let loaded = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.events(), events);
    }

    #[test]
    fn special_values_survive() {
        let values = vec![0.0f32, -0.0, 1.5, -1.5, f32::MIN_POSITIVE, 65504.0];
        let trace = Trace::from_values(values.clone());
        let path = tmp("special");
        trace.save(&path).expect("save");
        let loaded = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(
            loaded
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            values.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a trace file").expect("write");
        let err = Trace::load(&path).expect_err("must fail");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let values: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let trace = Trace::from_values(values);
        let path = tmp("truncated");
        trace.save(&path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        let err = Trace::load(&path).expect_err("must fail");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::from_values(Vec::new());
        assert!(trace.is_empty());
        let path = tmp("empty");
        trace.save(&path).expect("save");
        let loaded = Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 0);
    }
}
