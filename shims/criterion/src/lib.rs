//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — groups,
//! throughput annotation, `bench_function` / `bench_with_input`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! loop: warm up briefly, then time enough iterations to cover a short
//! measurement budget and report the mean per-iteration time (plus
//! throughput when annotated). No statistics, no HTML reports.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Benchmark throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Labels a benchmark by its parameter alone.
    pub fn from_parameter<P: core::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Labels a benchmark with a function name and a parameter.
    pub fn new<P: core::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchLabel>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().0;
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b);
        report(&label, self.throughput, b.result);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchLabel>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into().0;
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b, input);
        report(&label, self.throughput, b.result);
        self
    }

    /// Ends the group (formatting symmetry with criterion).
    pub fn finish(&mut self) {}
}

/// Accepted benchmark labels: `&str` or [`BenchmarkId`].
pub struct BenchLabel(String);

impl From<&str> for BenchLabel {
    fn from(s: &str) -> Self {
        BenchLabel(s.to_string())
    }
}

impl From<String> for BenchLabel {
    fn from(s: String) -> Self {
        BenchLabel(s)
    }
}

impl From<BenchmarkId> for BenchLabel {
    fn from(id: BenchmarkId) -> Self {
        BenchLabel(id.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates a per-iteration cost for batching.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let target = (self.measure.as_secs_f64() / est.max(1e-9)).ceil() as u64;
        let iters = target.clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some(start.elapsed() / iters as u32);
    }
}

fn report(label: &str, throughput: Option<Throughput>, result: Option<Duration>) {
    match result {
        Some(mean) => {
            let rate = throughput.map(|t| {
                let per_sec = match t {
                    Throughput::Elements(n) => n as f64 / mean.as_secs_f64(),
                    Throughput::Bytes(n) => n as f64 / mean.as_secs_f64(),
                };
                let unit = match t {
                    Throughput::Elements(_) => "elem/s",
                    Throughput::Bytes(_) => "B/s",
                };
                format!("  ({per_sec:.3e} {unit})")
            });
            println!("  {label}: {mean:?}/iter{}", rate.unwrap_or_default());
        }
        None => println!("  {label}: no measurement (b.iter never called)"),
    }
}

/// An optimization barrier (best-effort without unstable intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(128));
        group.bench_function("sum", |b| b.iter(|| (0..128u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
