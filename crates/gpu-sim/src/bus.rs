//! The CPU↔GPU bus model (AGP 8X on the paper's testbed).
//!
//! Paper §4.1: *"The data bus can achieve a theoretical peak bandwidth rate
//! of 4 GBps. In practice, the data transfer rates are much lower
//! (~800 MBps)"*. The co-processor protocol is designed around this: one
//! upload and one readback per sorted batch, everything else stays on the
//! GPU.

use gsm_model::{Bytes, SimTime};

/// Performance model of the bus connecting CPU and GPU.
#[derive(Clone, Debug)]
pub struct BusModel {
    /// Effective (observed, not theoretical) bandwidth in bytes/second.
    pub effective_bandwidth: f64,
    /// Fixed per-transfer latency (DMA setup, driver round trip).
    pub latency: SimTime,
}

impl BusModel {
    /// AGP 8X as measured by the paper: ~800 MB/s effective, with a
    /// transfer-setup latency of 10 µs.
    pub fn agp_8x() -> Self {
        BusModel {
            effective_bandwidth: 800e6,
            latency: SimTime::from_micros(10.0),
        }
    }

    /// A free bus for functional tests.
    pub fn ideal() -> Self {
        BusModel {
            effective_bandwidth: 1e18,
            latency: SimTime::ZERO,
        }
    }

    /// Simulated time to move `bytes` across the bus (either direction).
    #[inline]
    pub fn transfer_time(&self, bytes: Bytes) -> SimTime {
        self.latency + bytes.time_at_bandwidth(self.effective_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agp_numbers() {
        let bus = BusModel::agp_8x();
        // 8 M f32 values (32 MiB) ≈ 41.9 ms + 10 µs latency.
        let t = bus.transfer_time(Bytes::of_f32s(8 << 20));
        assert!((t.as_millis() - 41.953).abs() < 0.05);
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let bus = BusModel::agp_8x();
        let t = bus.transfer_time(Bytes::new(64));
        assert!(t.as_micros() >= 10.0);
        assert!(t.as_micros() < 10.2);
    }

    #[test]
    fn ideal_bus_is_free() {
        let bus = BusModel::ideal();
        assert!(bus.transfer_time(Bytes::new(1 << 30)).as_secs() < 1e-6);
    }
}
