//! Windowing adapters.
//!
//! The paper's algorithms are *window-based* (§3.2): the stream is consumed
//! in fixed-size tumbling windows of `⌈1/ε⌉` (frequencies) or `⌈1/(2ε′)⌉`
//! (quantiles) elements; each window is sorted and folded into the running
//! summary. Variable-width windows group by a timestamp horizon instead
//! (§5.3).

use crate::gen::Timestamped;

/// Splits a value stream into consecutive fixed-size windows.
///
/// The final window is yielded even if partially filled — the paper's
/// streaming algorithms must fold in a trailing partial window at
/// end-of-stream.
pub struct FixedWindows<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator<Item = f32>> FixedWindows<I> {
    /// Wraps `inner`, emitting windows of `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(inner: I, size: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        FixedWindows { inner, size }
    }
}

impl<I: Iterator<Item = f32>> Iterator for FixedWindows<I> {
    type Item = Vec<f32>;
    fn next(&mut self) -> Option<Vec<f32>> {
        let mut w = Vec::with_capacity(self.size);
        for v in self.inner.by_ref() {
            w.push(v);
            if w.len() == self.size {
                return Some(w);
            }
        }
        if w.is_empty() {
            None
        } else {
            Some(w)
        }
    }
}

/// Groups a timestamped stream into consecutive windows of fixed *duration*
/// (variable element count) — the variable-width sliding-window regime of
/// §5.3, where bursts produce large windows and calm stretches small ones.
pub struct VariableWindows<I> {
    inner: I,
    width: f64,
    boundary: f64,
    pending: Option<Timestamped>,
    started: bool,
}

impl<I: Iterator<Item = Timestamped>> VariableWindows<I> {
    /// Wraps `inner`, emitting one window per `width` seconds of stream
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn new(inner: I, width: f64) -> Self {
        assert!(width > 0.0, "window width must be positive");
        VariableWindows {
            inner,
            width,
            boundary: 0.0,
            pending: None,
            started: false,
        }
    }
}

impl<I: Iterator<Item = Timestamped>> Iterator for VariableWindows<I> {
    type Item = Vec<Timestamped>;
    fn next(&mut self) -> Option<Vec<Timestamped>> {
        let mut w = Vec::new();
        if let Some(p) = self.pending.take() {
            w.push(p);
        }
        loop {
            match self.inner.next() {
                Some(e) => {
                    if !self.started {
                        // Anchor the first boundary at the first arrival.
                        self.boundary = e.time + self.width;
                        self.started = true;
                    }
                    if e.time < self.boundary {
                        w.push(e);
                    } else {
                        // Advance the boundary past this event's window.
                        while e.time >= self.boundary {
                            self.boundary += self.width;
                        }
                        self.pending = Some(e);
                        // Empty windows (quiet periods) are skipped rather
                        // than emitted.
                        if w.is_empty() {
                            w.push(self.pending.take().expect("just set"));
                            continue;
                        }
                        return Some(w);
                    }
                }
                None => {
                    return if w.is_empty() { None } else { Some(w) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_windows_exact_division() {
        let data = (0..12).map(|i| i as f32);
        let w: Vec<Vec<f32>> = FixedWindows::new(data, 4).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(w[2], vec![8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn fixed_windows_trailing_partial() {
        let data = (0..10).map(|i| i as f32);
        let w: Vec<Vec<f32>> = FixedWindows::new(data, 4).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[2], vec![8.0, 9.0]);
    }

    #[test]
    fn fixed_windows_empty_stream() {
        let w: Vec<Vec<f32>> = FixedWindows::new(core::iter::empty(), 4).collect();
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = FixedWindows::new(core::iter::empty(), 0);
    }

    fn ts(time: f64, value: f32) -> Timestamped {
        Timestamped { time, value }
    }

    #[test]
    fn variable_windows_group_by_duration() {
        let events = vec![
            ts(0.1, 1.0),
            ts(0.5, 2.0),
            ts(0.9, 3.0),
            ts(1.5, 4.0),
            ts(1.8, 5.0),
            ts(3.0, 6.0),
        ];
        // First arrival at 0.1 anchors boundaries at 1.1, 2.1, 3.1 …
        let w: Vec<Vec<Timestamped>> = VariableWindows::new(events.into_iter(), 1.0).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 3);
        assert_eq!(w[1].len(), 2);
        assert_eq!(w[2].len(), 1);
        assert_eq!(w[2][0].value, 6.0);
    }

    #[test]
    fn variable_windows_all_counts_sum() {
        let events: Vec<Timestamped> = crate::gen::BurstyGen::new(4, 500.0, 20.0)
            .take(5000)
            .collect();
        let windows: Vec<Vec<Timestamped>> =
            VariableWindows::new(events.clone().into_iter(), 0.05).collect();
        let total: usize = windows.iter().map(Vec::len).sum();
        assert_eq!(total, events.len(), "no event may be dropped or duplicated");
        // Window sizes must actually vary under bursty arrivals.
        let min = windows.iter().map(Vec::len).min().unwrap();
        let max = windows.iter().map(Vec::len).max().unwrap();
        assert!(
            max > 2 * min.max(1),
            "bursts must produce size variation (min={min}, max={max})"
        );
    }
}
