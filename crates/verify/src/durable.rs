//! The crash-recovery differential driver.
//!
//! Every adversarial family is pushed into a durable
//! [`StreamEngine`] (WAL + incremental checkpoints), killed at a
//! configured crash point, subjected to one fault from the
//! [`gsm_durable::FaultPlan`] taxonomy, and recovered. Two invariants are
//! checked for every cell of the engine × shard × fault grid:
//!
//! 1. **Byte identity** — the recovered engine's answers fingerprint
//!    identically (FNV-1a, same accumulator as [`crate::diff`]) to an
//!    uncrashed durable run over exactly the recovered element count.
//!    Recovery may lose the un-sealed tail; it may never *change* an
//!    answer.
//! 2. **Detection** — every injected corruption (torn final record,
//!    truncated segment, payload bit flip) is surfaced by the recovery
//!    report and the damaged record is never applied; the
//!    crash-between-checkpoint-and-truncate timing fault leaves a clean
//!    log whose stale records are all skipped, never replayed twice.
//!
//! The reference run is itself durable (same checkpoint cadence): the
//! engine flushes shard buffers at every checkpoint, which changes window
//! chunking for `k ≥ 2`, so only a run with the same flush schedule is a
//! valid byte-identity baseline.

use std::path::PathBuf;

use gsm_core::Engine;
use gsm_dsms::{DurableOptions, StreamEngine};
use gsm_durable::{CheckpointPolicy, Fault, FaultPlan, FsyncPolicy};
use gsm_obs::Recorder;

use crate::diff::{Fnv, VerifyConfig};
use crate::gen::StreamSpec;

/// Tuning for the recovery grid; the default matches the CI fault-matrix
/// smoke configuration.
#[derive(Clone, Debug)]
pub struct DurableVerifyConfig {
    /// Shard counts to exercise (merge paths differ from `k = 1`).
    pub shards: Vec<usize>,
    /// Checkpoint cadence in sealed-window records.
    pub checkpoint_every: u64,
    /// WAL records per segment file (small values exercise segment rolls
    /// and whole-segment truncation).
    pub records_per_segment: u64,
    /// Crash points as fractions of the stream, cycled across the grid.
    pub crash_points: Vec<f64>,
    /// Seed for the deterministic [`FaultPlan`].
    pub plan_seed: u64,
}

impl Default for DurableVerifyConfig {
    fn default() -> Self {
        DurableVerifyConfig {
            shards: vec![1, 2],
            checkpoint_every: 2,
            records_per_segment: 3,
            crash_points: vec![0.6, 0.95],
            plan_seed: 0xD07A_B1E5,
        }
    }
}

/// One cell of the recovery grid: engine × shards × fault at one crash
/// point.
#[derive(Clone, Debug, serde::Serialize)]
pub struct RecoveredRun {
    /// The backend's display label.
    pub engine: String,
    /// Ingest shard count.
    pub shards: usize,
    /// [`Fault`] name injected after the kill.
    pub fault: String,
    /// Elements pushed before the kill.
    pub crash_at: u64,
    /// Elements the recovered engine answers over.
    pub recovered_count: u64,
    /// FNV-1a fingerprint of the recovered engine's answers.
    pub fingerprint_recovered: u64,
    /// FNV-1a fingerprint of the uncrashed reference's answers.
    pub fingerprint_reference: u64,
    /// Whether the two fingerprints match.
    pub byte_identical: bool,
    /// Whether the fault was detected (or, for the timing fault, whether
    /// the stale records were all skipped) and never applied.
    pub detection_ok: bool,
    /// The recovery scan reported corruption.
    pub corruption_detected: bool,
    /// The recovery scan reported a torn tail.
    pub torn_tail: bool,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Stale records skipped below the checkpoint horizon.
    pub skipped_records: u64,
    /// What the injector did, plus any detection detail.
    pub detail: String,
}

impl RecoveredRun {
    /// Whether this cell upholds both recovery invariants.
    pub fn passed(&self) -> bool {
        self.byte_identical && self.detection_ok
    }
}

/// The verdict for one adversarial stream across the whole recovery grid.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DurableFamilyOutcome {
    /// Generator family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// Stream length the crash points are fractions of.
    pub n: u64,
    /// Window size the engines sealed at.
    pub window: u64,
    /// Every grid cell's result.
    pub runs: Vec<RecoveredRun>,
}

impl DurableFamilyOutcome {
    /// Whether every cell recovered byte-identically and detected its
    /// fault.
    pub fn passed(&self) -> bool {
        self.runs.iter().all(RecoveredRun::passed)
    }

    /// Human-readable description of every failing cell.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for run in &self.runs {
            if !run.byte_identical {
                out.push(format!(
                    "{}/{}/k={}/{}: recovered fingerprint {:#018x} != reference {:#018x} at count {}",
                    self.family,
                    run.engine,
                    run.shards,
                    run.fault,
                    run.fingerprint_recovered,
                    run.fingerprint_reference,
                    run.recovered_count
                ));
            }
            if !run.detection_ok {
                out.push(format!(
                    "{}/{}/k={}/{}: fault not detected or damage applied ({})",
                    self.family, run.engine, run.shards, run.fault, run.detail
                ));
            }
        }
        out
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "gsm-verify-durable-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The query set every durable engine under test registers.
fn register_queries(
    eng: &mut StreamEngine,
    cfg: &VerifyConfig,
) -> (gsm_dsms::QueryId, gsm_dsms::QueryId, gsm_dsms::QueryId) {
    let q = eng.register_quantile(cfg.quantile_eps);
    let f = eng.register_frequency(cfg.frequency_eps);
    let sq = eng.register_sliding_quantile(cfg.sliding_eps, 2048);
    (q, f, sq)
}

/// Fingerprints one engine's answers: running + sliding quantiles at every
/// φ, heavy hitters at the support threshold, and the element count.
fn fingerprint(
    eng: &mut StreamEngine,
    ids: (gsm_dsms::QueryId, gsm_dsms::QueryId, gsm_dsms::QueryId),
    cfg: &VerifyConfig,
) -> u64 {
    let (q, f, sq) = ids;
    let mut h = Fnv::new();
    h.u64(eng.count());
    for &phi in &cfg.phis {
        h.u64(phi.to_bits());
        h.f32(eng.quantile(q, phi));
        h.f32(eng.sliding_quantile(sq, phi));
    }
    for (v, c) in eng.heavy_hitters(f, cfg.support) {
        h.f32(v);
        h.u64(c);
    }
    h.0
}

fn durable_opts(
    dir: &std::path::Path,
    dcfg: &DurableVerifyConfig,
    truncate: bool,
) -> DurableOptions {
    DurableOptions::new(dir)
        // Off models a process kill: appended records survive in the page
        // cache; the injected faults supply the damage. EverySeal would
        // fsync hundreds of times per cell across a 300-cell smoke grid.
        .fsync(FsyncPolicy::Off)
        .checkpoint(CheckpointPolicy::EveryWindows(dcfg.checkpoint_every))
        .records_per_segment(dcfg.records_per_segment)
        .truncate_on_checkpoint(truncate)
}

/// Runs one adversarial stream through the full recovery grid:
/// every configured engine × shard count × [`Fault`], crash points cycled
/// per cell. Each cell ingests to the crash point in a scratch durable
/// directory, drops the engine (the kill), injects its fault, recovers,
/// and compares against an uncrashed durable reference over the recovered
/// prefix. Scratch directories are removed afterwards.
pub fn verify_family_recovered(
    spec: &StreamSpec,
    cfg: &VerifyConfig,
    dcfg: &DurableVerifyConfig,
) -> DurableFamilyOutcome {
    // Frequency queries are registered, so use the canonical integer-id
    // projection (see the crate docs on -0.0 vs 0.0).
    let data = spec.integer_ids();
    let n = data.len();
    let plan = FaultPlan::new(dcfg.plan_seed);
    let mut outcome = DurableFamilyOutcome {
        family: spec.family.name().to_string(),
        seed: spec.seed,
        n: n as u64,
        window: 0,
        runs: Vec::new(),
    };
    let mut cell = 0u64;
    for engine in &cfg.engines {
        for &k in &dcfg.shards {
            for fault in Fault::ALL {
                let crash_frac = dcfg.crash_points[cell as usize % dcfg.crash_points.len()];
                outcome.runs.push(run_cell(
                    *engine,
                    k,
                    fault,
                    crash_frac,
                    &data,
                    spec,
                    cfg,
                    dcfg,
                    plan,
                    cell,
                    &mut outcome.window,
                ));
                cell += 1;
            }
        }
    }
    outcome
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    engine: Engine,
    k: usize,
    fault: Fault,
    crash_frac: f64,
    data: &[f32],
    spec: &StreamSpec,
    cfg: &VerifyConfig,
    dcfg: &DurableVerifyConfig,
    plan: FaultPlan,
    cell: u64,
    window_out: &mut u64,
) -> RecoveredRun {
    let dir = scratch_dir("run");
    let ref_dir = scratch_dir("ref");
    // The timing fault is a runtime configuration, not a disk mutation:
    // checkpoints never truncate, so stale records pile up below every
    // horizon and recovery must skip them.
    let truncate = fault != Fault::CrashBetweenCheckpointAndTruncate;

    let mut eng = StreamEngine::new(engine)
        .with_n_hint(data.len() as u64)
        .with_shards(k)
        .with_durability(durable_opts(&dir, dcfg, truncate))
        .expect("scratch durable dir");
    let ids = register_queries(&mut eng, cfg);
    eng.seal();
    let window = eng.window();
    *window_out = window as u64;
    // Crash late enough that at least two records exist — the injectors
    // need a victim besides the first record.
    let crash_at = ((data.len() as f64 * crash_frac) as usize).clamp(2 * window, data.len());
    eng.push_all(data[..crash_at].iter().copied());
    drop(eng); // the kill: no shutdown hook, the pending tail is lost

    let salt = (spec.seed << 16) ^ cell;
    let injection = plan
        .inject(&dir, fault, salt)
        .expect("injection on scratch dir");

    let (mut recovered, report) = StreamEngine::recover_from(
        engine,
        durable_opts(&dir, dcfg, truncate),
        Recorder::disabled(),
    )
    .expect("recovery");
    let fingerprint_recovered = fingerprint(&mut recovered, ids, cfg);
    let recovered_count = report.recovered_count;

    // Uncrashed reference over exactly the recovered prefix, same
    // checkpoint cadence (same flush schedule), clean directory.
    let mut reference = StreamEngine::new(engine)
        .with_n_hint(data.len() as u64)
        .with_shards(k)
        .with_durability(durable_opts(&ref_dir, dcfg, true))
        .expect("scratch reference dir");
    let ref_ids = register_queries(&mut reference, cfg);
    reference.push_all(data[..recovered_count as usize].iter().copied());
    let fingerprint_reference = fingerprint(&mut reference, ref_ids, cfg);

    let detection_ok = if injection.mutated {
        // The damage must be surfaced, and the damaged record must never
        // have been applied: either it sat at or below the checkpoint
        // horizon (its elements came from the snapshot, not the log), or
        // replay stopped strictly before it.
        let target = injection.target_seq.expect("mutating faults pick a victim");
        report.damaged()
            && (target <= report.checkpoint_wal_seq || report.last_applied_seq < target)
    } else {
        // Timing fault: the log is clean, and every record at or below
        // the restored horizon is present (truncation never ran) and was
        // skipped, not replayed twice.
        !report.damaged() && report.skipped_records == report.checkpoint_wal_seq
    };

    let run = RecoveredRun {
        engine: format!("{engine:?}"),
        shards: k,
        fault: fault.name().to_string(),
        crash_at: crash_at as u64,
        recovered_count,
        fingerprint_recovered,
        fingerprint_reference,
        byte_identical: fingerprint_recovered == fingerprint_reference,
        detection_ok,
        corruption_detected: report.corruption.is_some(),
        torn_tail: report.torn_tail,
        replayed_records: report.replayed_records,
        skipped_records: report.skipped_records,
        detail: format!(
            "{}; recovery: ckpt_seq={} last_applied={} corruption={:?}",
            injection.detail, report.checkpoint_wal_seq, report.last_applied_seq, report.corruption
        ),
    };
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    fn smoke_cfg() -> (VerifyConfig, DurableVerifyConfig) {
        (
            VerifyConfig {
                engines: vec![Engine::Host],
                ..VerifyConfig::default()
            },
            DurableVerifyConfig::default(),
        )
    }

    #[test]
    fn zipf_family_survives_the_fault_grid() {
        let (cfg, dcfg) = smoke_cfg();
        let spec = StreamSpec {
            family: Family::ZipfSkew,
            seed: 11,
            n: 4096,
            window: 1024,
        };
        let outcome = verify_family_recovered(&spec, &cfg, &dcfg);
        assert_eq!(outcome.runs.len(), 2 * Fault::ALL.len());
        assert!(outcome.passed(), "failures: {:#?}", outcome.failures());
        assert_eq!(outcome.window, 1024);
        // Every fault appears in the grid, and the corruption faults were
        // actually detected (not vacuously passed).
        for fault in Fault::ALL {
            assert!(outcome.runs.iter().any(|r| r.fault == fault.name()));
        }
        for run in &outcome.runs {
            if run.fault != Fault::CrashBetweenCheckpointAndTruncate.name() {
                assert!(
                    run.torn_tail || run.corruption_detected,
                    "{}/{} must surface its damage: {}",
                    run.engine,
                    run.fault,
                    run.detail
                );
            } else {
                assert!(run.skipped_records > 0, "stale records must exist");
            }
        }
    }

    #[test]
    fn sharded_cells_recover_byte_identically() {
        let (cfg, dcfg) = smoke_cfg();
        let spec = StreamSpec {
            family: Family::HeavyDuplicate,
            seed: 5,
            n: 6144,
            window: 1024,
        };
        let outcome = verify_family_recovered(&spec, &cfg, &dcfg);
        assert!(outcome.passed(), "failures: {:#?}", outcome.failures());
        assert!(outcome.runs.iter().any(|r| r.shards == 2));
    }

    #[test]
    fn failures_are_described_per_cell() {
        let (cfg, dcfg) = smoke_cfg();
        let spec = StreamSpec {
            family: Family::Uniform,
            seed: 3,
            n: 4096,
            window: 1024,
        };
        let mut outcome = verify_family_recovered(&spec, &cfg, &dcfg);
        outcome.runs[0].byte_identical = false;
        outcome.runs[1].detection_ok = false;
        let failures = outcome.failures();
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("fingerprint"), "{}", failures[0]);
        assert!(failures[1].contains("not detected"), "{}", failures[1]);
        assert!(!outcome.passed());
    }
}
