#![warn(missing_docs)]

//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see `DESIGN.md`'s experiment index). This library provides
//! the common pieces: a tiny CLI parser, aligned table printing with CSV
//! output, and workload construction.

use std::collections::HashMap;

/// Schema version stamped on every JSON artifact written under `results/`.
pub const RESULT_SCHEMA: u32 = 1;

/// Wraps a serialized JSON *object* in the shared versioned envelope: the
/// payload's own fields are preserved and `"schema"` / `"created_by"` are
/// spliced in front, so every `results/*.json` artifact carries the same
/// provenance header. Consumers that only understand the payload (e.g.
/// `about:tracing` reading a Chrome trace) treat the extra keys as
/// metadata.
///
/// # Panics
///
/// Panics if `payload` is not a JSON object (must start with `{` and end
/// with `}`).
pub fn envelope_json(created_by: &str, payload: &str) -> String {
    let body = payload.trim();
    assert!(
        body.starts_with('{') && body.ends_with('}'),
        "envelope payload must be a JSON object"
    );
    let inner = &body[1..body.len() - 1];
    let created: String = created_by.chars().flat_map(char::escape_default).collect();
    let head = format!("{{\"schema\":{RESULT_SCHEMA},\"created_by\":\"{created}\"");
    if inner.trim().is_empty() {
        format!("{head}}}")
    } else {
        format!("{head},{inner}}}")
    }
}

/// Writes one result artifact, creating the parent directory if needed.
///
/// # Panics
///
/// Panics if the directory or file cannot be written.
pub fn write_result(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(path, contents).expect("write result file");
}

/// Minimal `--key value` / `--flag` argument parser.
///
/// Recognized forms: `--key value` and bare `--flag` (stored as "true").
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut it = iter.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let val = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), val);
            }
        }
        Args { values }
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// An aligned text table that can also emit CSV (`--csv`).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints aligned columns, or CSV when `csv` is true.
    pub fn print(&self, csv: bool) {
        if csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
    }
}

/// Formats a simulated time as milliseconds with 3 decimals (the paper's
/// plots are in seconds/milliseconds; a fixed unit makes series comparable).
pub fn ms(t: gsm_model::SimTime) -> String {
    format!("{:.3}", t.as_millis())
}

/// Human-readable element counts: `16K`, `8M`.
pub fn human_n(n: usize) -> String {
    if n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::parse_from(["--n", "1000", "--csv", "--engine", "gpu"].map(String::from));
        assert_eq!(a.get_num("n", 0usize), 1000);
        assert!(a.flag("csv"));
        assert_eq!(a.get("engine"), Some("gpu"));
        assert!(!a.flag("missing"));
        assert_eq!(a.get_num("missing", 7u32), 7);
    }

    #[test]
    fn table_rows_align() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.print(false);
        t.print(true);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn envelope_splices_schema_and_provenance() {
        let wrapped = envelope_json("gsm-bench/test", "{\"a\":1}");
        assert_eq!(
            wrapped,
            format!("{{\"schema\":{RESULT_SCHEMA},\"created_by\":\"gsm-bench/test\",\"a\":1}}")
        );
        let empty = envelope_json("t", "{}");
        assert_eq!(
            empty,
            format!("{{\"schema\":{RESULT_SCHEMA},\"created_by\":\"t\"}}")
        );
        // Round-trips through the JSON parser with the payload intact.
        let v = serde::json::parse(&wrapped).expect("valid JSON");
        let serde::Value::Obj(fields) = v else {
            panic!("envelope must parse as an object");
        };
        assert_eq!(fields[0].0, "schema");
        assert_eq!(fields[1].0, "created_by");
        assert!(fields.iter().any(|(k, _)| k == "a"));
    }

    #[test]
    #[should_panic(expected = "JSON object")]
    fn envelope_rejects_non_objects() {
        let _ = envelope_json("t", "[1,2]");
    }

    #[test]
    fn humanized_counts() {
        assert_eq!(human_n(16 << 10), "16K");
        assert_eq!(human_n(8 << 20), "8M");
        assert_eq!(human_n(1000), "1000");
    }
}
