//! Synthetic stream generators.
//!
//! The paper's headline workload is a uniform random stream
//! ([`UniformGen`]). The other generators exercise the sorters and sketches
//! on distributions the paper's machinery must also handle: gaussian data
//! (clustered histograms), pre-sorted and nearly-sorted runs (adversarial
//! for quicksort's branch predictor, neutral for a sorting network), and
//! bursty timestamped arrivals (the variable-width sliding windows of
//! §5.3).
//!
//! Everything is an `Iterator` — compose with [`crate::window::FixedWindows`]
//! or collect with [`Iterator::take`]. All generators are deterministic given
//! their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::f16::F16;

/// Uniform random values in `[lo, hi)`, quantized to binary16 precision.
///
/// Quantization mirrors the paper's 16-bit input stream: the emitted `f32`
/// is always exactly representable as an [`F16`].
pub struct UniformGen {
    rng: StdRng,
    lo: f32,
    hi: f32,
}

impl UniformGen {
    /// Creates a generator over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn new(seed: u64, lo: f32, hi: f32) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        UniformGen {
            rng: StdRng::seed_from_u64(seed),
            lo,
            hi,
        }
    }

    /// The paper's workload: uniform over `[0, 1)`.
    pub fn unit(seed: u64) -> Self {
        Self::new(seed, 0.0, 1.0)
    }
}

impl Iterator for UniformGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let x: f32 = self.rng.random_range(self.lo..self.hi);
        let mut h = F16::from_f32(x);
        // Round-to-nearest can push a draw just below `hi` up onto it;
        // step down one f16 ulp to keep the range half-open.
        while h.to_f32() >= self.hi {
            h = F16::from_bits(h.to_bits() - 1);
        }
        Some(h.to_f32())
    }
}

/// Gaussian values (Box–Muller), quantized to binary16 precision.
pub struct GaussianGen {
    rng: StdRng,
    mean: f32,
    std_dev: f32,
    spare: Option<f32>,
}

impl GaussianGen {
    /// Creates a generator with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is not strictly positive.
    pub fn new(seed: u64, mean: f32, std_dev: f32) -> Self {
        assert!(std_dev > 0.0, "std_dev must be positive");
        GaussianGen {
            rng: StdRng::seed_from_u64(seed),
            mean,
            std_dev,
            spare: None,
        }
    }
}

impl Iterator for GaussianGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let z = if let Some(s) = self.spare.take() {
            s
        } else {
            // Box–Muller transform.
            let u1: f32 = self.rng.random_range(f32::MIN_POSITIVE..1.0);
            let u2: f32 = self.rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * core::f32::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        Some(F16::from_f32(self.mean + self.std_dev * z).to_f32())
    }
}

/// An ascending (or descending) ramp — fully sorted input.
pub struct SortedGen {
    next: u64,
    step: i64,
}

impl SortedGen {
    /// Ascending from 0.
    pub fn ascending() -> Self {
        SortedGen { next: 0, step: 1 }
    }

    /// Descending from `start`.
    pub fn descending(start: u64) -> Self {
        SortedGen {
            next: start,
            step: -1,
        }
    }
}

impl Iterator for SortedGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let v = self.next as f32;
        self.next = self.next.wrapping_add(self.step as u64);
        Some(v)
    }
}

/// A sorted ramp with a fraction of random element swaps — "nearly sorted"
/// input, the classic best case for adaptive CPU sorts and a non-event for
/// sorting networks (which always run every comparator).
pub struct NearlySortedGen {
    buf: Vec<f32>,
    pos: usize,
}

impl NearlySortedGen {
    /// Generates `len` ascending values then applies
    /// `swap_fraction · len` random transpositions.
    ///
    /// # Panics
    ///
    /// Panics if `swap_fraction` is outside `[0, 1]` or `len == 0`.
    pub fn new(seed: u64, len: usize, swap_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&swap_fraction),
            "swap_fraction in [0,1]"
        );
        assert!(len > 0, "len must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut buf: Vec<f32> = (0..len).map(|i| i as f32).collect();
        let swaps = (len as f64 * swap_fraction) as usize;
        for _ in 0..swaps {
            let i = rng.random_range(0..len);
            let j = rng.random_range(0..len);
            buf.swap(i, j);
        }
        NearlySortedGen { buf, pos: 0 }
    }
}

impl Iterator for NearlySortedGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
}

/// Pareto (heavy-tailed) values, quantized to binary16 precision.
///
/// Classic model of flow sizes, file sizes, and session durations — the
/// regime where a few elephants carry most of the mass. Values are
/// `scale / U^(1/α)`, clamped to the finite f16 range.
pub struct ParetoGen {
    rng: StdRng,
    scale: f32,
    inv_alpha: f64,
}

impl ParetoGen {
    /// Creates a generator with minimum value `scale` and tail exponent
    /// `alpha` (smaller α = heavier tail; α ≤ 2 has infinite variance).
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `alpha > 0`.
    pub fn new(seed: u64, scale: f32, alpha: f64) -> Self {
        assert!(
            scale > 0.0 && alpha > 0.0,
            "scale and alpha must be positive"
        );
        ParetoGen {
            rng: StdRng::seed_from_u64(seed),
            scale,
            inv_alpha: 1.0 / alpha,
        }
    }
}

impl Iterator for ParetoGen {
    type Item = f32;
    fn next(&mut self) -> Option<f32> {
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let v = self.scale as f64 * u.powf(-self.inv_alpha);
        // Clamp into the finite f16 range before quantizing.
        let clamped = v.min(65_504.0) as f32;
        Some(F16::from_f32(clamped).to_f32())
    }
}

/// A stream element carrying an arrival timestamp, for time-based
/// (variable-width) sliding windows.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Timestamped {
    /// Arrival time in seconds since stream start.
    pub time: f64,
    /// The value.
    pub value: f32,
}

/// Timestamped uniform values with bursty arrivals.
///
/// Arrivals alternate between a *calm* regime (exponential inter-arrival
/// times at `base_rate`) and *bursts* (`burst_factor`× faster) — the
/// irregular arrival pattern that motivates load-shedding in a DSMS
/// (paper §1) and that variable-width windows must absorb.
pub struct BurstyGen {
    rng: StdRng,
    clock: f64,
    base_rate: f64,
    burst_factor: f64,
    in_burst: bool,
    remaining_in_phase: u32,
}

impl BurstyGen {
    /// Creates a generator with `base_rate` arrivals/second in calm phases
    /// and `burst_factor`× that during bursts. Phases last a random
    /// 100–1000 elements.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate` or `burst_factor` is not strictly positive.
    pub fn new(seed: u64, base_rate: f64, burst_factor: f64) -> Self {
        assert!(
            base_rate > 0.0 && burst_factor > 0.0,
            "rates must be positive"
        );
        BurstyGen {
            rng: StdRng::seed_from_u64(seed),
            clock: 0.0,
            base_rate,
            burst_factor,
            in_burst: false,
            remaining_in_phase: 0,
        }
    }
}

impl Iterator for BurstyGen {
    type Item = Timestamped;
    fn next(&mut self) -> Option<Timestamped> {
        if self.remaining_in_phase == 0 {
            self.in_burst = !self.in_burst;
            self.remaining_in_phase = self.rng.random_range(100..1000);
        }
        self.remaining_in_phase -= 1;
        let rate = if self.in_burst {
            self.base_rate * self.burst_factor
        } else {
            self.base_rate
        };
        // Exponential inter-arrival gap.
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        self.clock += -u.ln() / rate;
        let value: f32 = self.rng.random_range(0.0..1.0);
        Some(Timestamped {
            time: self.clock,
            value: F16::from_f32(value).to_f32(),
        })
    }
}

/// Columnar batch adapter for stream generators.
///
/// The batched ingest plane (`StreamEngine::push_batch` in `gsm-dsms`)
/// consumes contiguous `&[f32]` columns; this extension trait lets any
/// value generator produce them without per-element `Iterator::next`
/// dispatch at the call site. Batches drawn this way contain exactly the
/// elements the scalar iterator would have yielded, in the same order —
/// batching never changes the stream.
pub trait BatchGen: Iterator<Item = f32> {
    /// Fills `out` from the generator, returning how many slots were
    /// written (short only when the generator is exhausted).
    fn fill(&mut self, out: &mut [f32]) -> usize {
        let mut n = 0;
        for slot in out.iter_mut() {
            match self.next() {
                Some(v) => *slot = v,
                None => break,
            }
            n += 1;
        }
        n
    }

    /// Draws the next `n` elements as one owned column (shorter only when
    /// the generator is exhausted).
    fn next_batch(&mut self, n: usize) -> Vec<f32>
    where
        Self: Sized,
    {
        let mut out = Vec::with_capacity(n);
        out.extend(self.by_ref().take(n));
        out
    }
}

impl<I: Iterator<Item = f32> + ?Sized> BatchGen for I {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_draws_match_the_scalar_iterator() {
        let scalar: Vec<f32> = UniformGen::unit(42).take(1000).collect();
        let mut gen = UniformGen::unit(42);
        let mut batched = gen.next_batch(137);
        let mut buf = vec![0.0f32; 863];
        assert_eq!(gen.fill(&mut buf), 863);
        batched.extend_from_slice(&buf);
        assert_eq!(scalar.len(), batched.len());
        assert!(scalar
            .iter()
            .zip(&batched)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // A drained generator reports short fills instead of looping.
        let mut short = (0..3).map(|i| i as f32);
        assert_eq!(short.fill(&mut buf), 3);
    }

    #[test]
    fn uniform_respects_range_and_f16_grid() {
        let vals: Vec<f32> = UniformGen::new(7, 2.0, 5.0).take(10_000).collect();
        assert!(vals.iter().all(|&v| (2.0..5.0).contains(&v)));
        assert!(
            vals.iter().all(|&v| F16::from_f32(v).to_f32() == v),
            "must sit on f16 grid"
        );
        // Coarse uniformity: mean near 3.5.
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 3.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a: Vec<f32> = UniformGen::unit(42).take(100).collect();
        let b: Vec<f32> = UniformGen::unit(42).take(100).collect();
        let c: Vec<f32> = UniformGen::unit(43).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments() {
        let vals: Vec<f32> = GaussianGen::new(1, 10.0, 2.0).take(50_000).collect();
        let n = vals.len() as f32;
        let mean = vals.iter().sum::<f32>() / n;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn sorted_ramps() {
        let up: Vec<f32> = SortedGen::ascending().take(5).collect();
        assert_eq!(up, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let down: Vec<f32> = SortedGen::descending(4).take(5).collect();
        assert_eq!(down, vec![4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn nearly_sorted_is_mostly_ordered() {
        let vals: Vec<f32> = NearlySortedGen::new(3, 10_000, 0.01).collect();
        assert_eq!(vals.len(), 10_000);
        let inversions_adjacent = vals.windows(2).filter(|w| w[0] > w[1]).count();
        // 1% swaps → few local inversions; a shuffled array would have ~50%.
        assert!(
            inversions_adjacent < 500,
            "{inversions_adjacent} adjacent inversions"
        );
        // It is a permutation of the ramp.
        let mut sorted = vals.clone();
        sorted.sort_by(f32::total_cmp);
        assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as f32));
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let vals: Vec<f32> = ParetoGen::new(5, 1.0, 1.2).take(100_000).collect();
        assert!(vals.iter().all(|&v| v >= 1.0 && v.is_finite()));
        // Heavy tail: the top 1% of values carries a large share of the sum.
        let mut sorted = vals.clone();
        sorted.sort_by(f32::total_cmp);
        let total: f64 = sorted.iter().map(|&v| v as f64).sum();
        let top1: f64 = sorted[sorted.len() * 99 / 100..]
            .iter()
            .map(|&v| v as f64)
            .sum();
        assert!(top1 / total > 0.2, "top-1% share {:.3}", top1 / total);
        // Median stays near scale * 2^(1/alpha).
        let median = sorted[sorted.len() / 2];
        assert!((1.2..2.6).contains(&median), "median {median}");
    }

    #[test]
    fn bursty_timestamps_increase_and_bursts_compress_gaps() {
        let events: Vec<Timestamped> = BurstyGen::new(11, 1000.0, 50.0).take(20_000).collect();
        assert!(events.windows(2).all(|w| w[1].time > w[0].time));
        // Median gap must be far below the calm-phase mean gap (1 ms)
        // because burst gaps dominate the small end.
        let mut gaps: Vec<f64> = events.windows(2).map(|w| w[1].time - w[0].time).collect();
        gaps.sort_by(f64::total_cmp);
        let median = gaps[gaps.len() / 2];
        let mean: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            median < mean,
            "bursty gap distribution must be right-skewed"
        );
    }
}
