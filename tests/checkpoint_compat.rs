//! Golden-blob checkpoint compatibility: committed schema-1 (legacy flat)
//! and schema-2 (sharded envelope) checkpoints under `tests/data/` must
//! keep restoring on today's engine, byte-identically to a fresh engine
//! fed the same stream — and `recover_from` must accept a durable
//! directory seeded with a golden checkpoint and no WAL segments.
//!
//! Both blobs were written by the engine versions that introduced their
//! schema, over the recipe below; regenerating them on a newer engine
//! would defeat the point of the test.

use gsm::core::Engine;
use gsm::dsms::{DurableOptions, QueryId, StreamEngine};
use gsm::obs::Recorder;

const PHIS: [f64; 5] = [0.01, 0.25, 0.5, 0.75, 0.99];

/// The golden recipe both committed blobs were captured from (at shard
/// counts 1 and 2): 2 500 elements of `(i * 37) % 101`.
fn golden_stream() -> impl Iterator<Item = f32> {
    (0..2500u32).map(|i| ((i * 37) % 101) as f32)
}

/// A fresh engine built exactly like the one the golden blobs came from.
fn golden_reference(shards: usize) -> (StreamEngine, QueryId, QueryId) {
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(5_000)
        .with_shards(shards);
    let q = eng.register_quantile(0.02);
    let f = eng.register_frequency(0.01);
    eng.push_all(golden_stream());
    (eng, q, f)
}

fn blob(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn assert_matches_reference(restored: &mut StreamEngine, shards: usize) {
    let (mut reference, q, f) = golden_reference(shards);
    assert_eq!(restored.count(), 2500, "whole golden stream restored");
    assert_eq!(restored.count(), reference.count());
    for phi in PHIS {
        assert_eq!(
            restored.quantile(q, phi).to_bits(),
            reference.quantile(q, phi).to_bits(),
            "phi={phi}"
        );
    }
    assert_eq!(
        restored.heavy_hitters(f, 0.02),
        reference.heavy_hitters(f, 0.02)
    );
}

#[test]
fn schema1_legacy_flat_blob_still_restores() {
    let mut restored =
        StreamEngine::restore(Engine::Host, &blob("ckpt_schema1.json")).expect("schema-1 blob");
    assert_matches_reference(&mut restored, 1);
}

#[test]
fn schema2_sharded_blob_still_restores() {
    let mut restored =
        StreamEngine::restore(Engine::Host, &blob("ckpt_schema2.json")).expect("schema-2 blob");
    assert_matches_reference(&mut restored, 2);
}

/// A durable directory seeded with a golden (pre-WAL) checkpoint and no
/// segments recovers cleanly: old checkpoints carry an implicit WAL
/// horizon of zero, so recovery restores them whole and resumes logging
/// from sequence one.
#[test]
fn recover_from_accepts_golden_checkpoints() {
    for (name, shards) in [("ckpt_schema1.json", 1), ("ckpt_schema2.json", 2)] {
        let dir =
            std::env::temp_dir().join(format!("gsm-ckpt-compat-{}-k{shards}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("ckpt-0000000000.json"), blob(name)).expect("seed checkpoint");

        let (mut recovered, report) = StreamEngine::recover_from(
            Engine::Host,
            DurableOptions::new(&dir),
            Recorder::disabled(),
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.recovered_count, 2500, "{name}");
        assert_eq!(report.checkpoint_wal_seq, 0, "{name}: pre-WAL horizon");
        assert_eq!(report.replayed_records, 0, "{name}: no segments to replay");
        assert!(!report.damaged(), "{name}");
        assert_matches_reference(&mut recovered, shards);

        // The recovered engine logs new windows from sequence one.
        recovered.push_all((0..1024).map(|i| i as f32));
        let segments: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .collect();
        assert_eq!(segments.len(), 1, "{name}: WAL resumed after recovery");

        std::fs::remove_dir_all(&dir).ok();
    }
}
