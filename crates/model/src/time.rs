use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration in *simulated* time.
///
/// All performance numbers produced by the reproduction are simulated: the
/// GPU model charges render passes against the GeForce 6800 Ultra's published
/// resources, and the CPU model charges instrumented algorithms against a
/// Pentium IV cache/branch model. `SimTime` is the common currency.
///
/// Internally a non-negative `f64` number of seconds. `f64` gives ~15
/// significant digits, far more than the fidelity of any timing model here,
/// while keeping arithmetic (sums over millions of render passes) cheap.
///
/// # Examples
///
/// ```
/// use gsm_model::SimTime;
///
/// let pass = SimTime::from_micros(3.0);
/// let total = pass * 441.0;
/// assert!((total.as_millis() - 1.323).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime {
    seconds: f64,
}

impl SimTime {
    /// The zero duration.
    pub const ZERO: SimTime = SimTime { seconds: 0.0 };

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `seconds` is negative or NaN.
    #[inline]
    pub fn from_secs(seconds: f64) -> Self {
        debug_assert!(seconds >= 0.0, "SimTime must be non-negative: {seconds}");
        SimTime { seconds }
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// The duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.seconds
    }

    /// The duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.seconds * 1e3
    }

    /// The duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.seconds * 1e6
    }

    /// Returns the larger of two durations.
    ///
    /// Used by resource models that are limited by the slower of two
    /// pipelines (e.g. compute throughput vs. DRAM bandwidth).
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.seconds >= other.seconds {
            self
        } else {
            other
        }
    }

    /// Returns true if this is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.seconds == 0.0
    }

    /// The ratio `self / other`, e.g. for computing time-share breakdowns.
    ///
    /// Returns 0 when `other` is zero.
    #[inline]
    pub fn fraction_of(self, other: SimTime) -> f64 {
        if other.seconds == 0.0 {
            0.0
        } else {
            self.seconds / other.seconds
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            seconds: self.seconds + rhs.seconds,
        }
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.seconds += rhs.seconds;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating subtraction: simulated durations never go negative.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            seconds: (self.seconds - rhs.seconds).max(0.0),
        }
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.seconds * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.seconds / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Formats with an auto-selected unit: `1.234 s`, `56.7 ms`, `890 µs`, `12 ns`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.seconds;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} µs", s * 1e6)
        } else {
            write!(f, "{:.1} ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips_units() {
        assert_eq!(SimTime::from_millis(1.0).as_secs(), 1e-3);
        assert_eq!(SimTime::from_micros(1.0).as_secs(), 1e-6);
        assert_eq!(SimTime::from_nanos(1.0).as_secs(), 1e-9);
        assert_eq!(SimTime::from_secs(2.5).as_millis(), 2500.0);
        assert_eq!(SimTime::from_secs(2.5).as_micros(), 2.5e6);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(3.0);
        let b = SimTime::from_millis(1.0);
        assert_eq!((a + b).as_millis(), 4.0);
        assert_eq!((a - b).as_millis(), 2.0);
        // Saturating subtraction.
        assert_eq!((b - a), SimTime::ZERO);
        assert_eq!((a * 2.0).as_millis(), 6.0);
        assert_eq!((a / 2.0).as_millis(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 4.0);
        c -= b;
        assert_eq!(c.as_millis(), 3.0);
    }

    #[test]
    fn max_and_fraction() {
        let a = SimTime::from_millis(3.0);
        let b = SimTime::from_millis(1.0);
        assert_eq!(a.max(b), a);
        assert_eq!(b.max(a), a);
        assert!((b.fraction_of(a) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.fraction_of(SimTime::ZERO), 0.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (0..10).map(|_| SimTime::from_micros(5.0)).sum();
        assert!((total.as_micros() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", SimTime::from_millis(12.0)), "12.000 ms");
        assert_eq!(format!("{}", SimTime::from_micros(7.5)), "7.500 µs");
        assert_eq!(format!("{}", SimTime::from_nanos(80.0)), "80.0 ns");
    }

    #[test]
    fn zero_checks() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_nanos(1.0).is_zero());
    }
}
