//! The co-processor batching coordinator (paper §4.1).
//!
//! Buffers complete windows and launches sorts whenever the backend's
//! batching policy says the buffered batch is worth sorting: immediately on
//! CPU engines (nothing to amortize), four windows at a time on the GPU
//! (one window per RGBA channel — one upload, one PBSN run, one readback
//! per batch), or whenever a value target is reached under the segmented
//! policy.
//!
//! Backends that sort in the background (the host worker pool) are
//! **double-buffered** here: a launched batch keeps sorting while the next
//! one accumulates, and the pipeline collects the oldest batch only when a
//! second one is queued — so exactly one batch overlaps ingest, results
//! stay in stream order, and the sink never observes a reordering.

use gsm_cpu::CpuStats;
use gsm_gpu::{GpuStats, TextureFormat};
use gsm_model::SimTime;

use super::backend::{backend_for, SortBackend, Submission};
use crate::engine::Engine;
use crate::report::WallClock;

/// Sorts windows on a pluggable [`SortBackend`], batching according to the
/// backend's policy, and exposes the backend's simulated-time ledger for
/// the sort phase.
pub struct BatchPipeline {
    backend: Box<dyn SortBackend>,
    pending: Vec<Vec<f32>>,
    windows_sorted: u64,
    /// Windows/elements submitted to a background sort, not yet collected.
    inflight_windows: u64,
    inflight_elements: u64,
}

impl BatchPipeline {
    /// Creates a pipeline with the calibrated device model for `engine`.
    pub fn new(engine: Engine) -> Self {
        Self::with_backend(backend_for(engine, 0))
    }

    /// Creates a *segmented* pipeline: on the GPU engine, windows
    /// accumulate until at least `min_batch_values` elements are buffered,
    /// then all of them sort in one segmented PBSN run (see
    /// [`super::GpuSimBackend::segmented`]). CPU engines behave exactly as
    /// in [`BatchPipeline::new`].
    pub fn segmented(engine: Engine, min_batch_values: usize) -> Self {
        Self::with_backend(backend_for(engine, min_batch_values))
    }

    /// Creates a pipeline over an explicit backend.
    pub fn with_backend(backend: Box<dyn SortBackend>) -> Self {
        BatchPipeline {
            backend,
            pending: Vec::new(),
            windows_sorted: 0,
            inflight_windows: 0,
            inflight_elements: 0,
        }
    }

    /// Selects the GPU texture storage format (no-op on CPU engines).
    /// `Rgba16F` halves bus traffic; values quantize to half precision on
    /// upload, which is lossless for streams already on the f16 grid (the
    /// paper's 16-bit input).
    pub fn with_texture_format(mut self, format: TextureFormat) -> Self {
        self.set_texture_format(format);
        self
    }

    /// In-place variant of [`BatchPipeline::with_texture_format`].
    pub fn set_texture_format(&mut self, format: TextureFormat) {
        self.backend.set_texture_format(format);
    }

    /// Installs an observability recorder on the backend (see
    /// [`SortBackend::set_recorder`]). Call before submitting windows: the
    /// overlapping backend rebuilds its worker pool and panics if batches
    /// are in flight.
    pub fn set_recorder(&mut self, rec: gsm_obs::Recorder) {
        self.backend.set_recorder(rec);
    }

    /// The engine in use.
    pub fn engine(&self) -> Engine {
        self.backend.engine()
    }

    /// Windows fully sorted so far.
    pub fn windows_sorted(&self) -> u64 {
        self.windows_sorted
    }

    /// Windows currently sorting in the background (submitted to an
    /// overlapping backend, results not yet collected).
    pub fn inflight_windows(&self) -> u64 {
        self.inflight_windows
    }

    /// Elements sitting in submitted-but-unsorted windows: the buffered
    /// batch plus anything still sorting in the background.
    pub fn pending_elements(&self) -> u64 {
        self.buffered_elements() + self.inflight_elements
    }

    fn buffered_elements(&self) -> u64 {
        self.pending.iter().map(|w| w.len() as u64).sum()
    }

    /// Submits one complete window. Returns sorted windows as they become
    /// available (empty until a GPU batch fills; immediate on CPU engines;
    /// the *previous* batch's results under an overlapping backend).
    pub fn push_window(&mut self, window: Vec<f32>) -> Vec<Vec<f32>> {
        assert!(!window.is_empty(), "windows must be non-empty");
        self.pending.push(window);
        let values = self.buffered_elements() as usize;
        if self.backend.batch_ready(self.pending.len(), values) {
            self.launch_pending()
        } else {
            Vec::new()
        }
    }

    /// Launches the buffered batch and returns whatever is ready: the batch
    /// itself on synchronous backends, or — keeping exactly one batch in
    /// flight — the *oldest* background batch on overlapping backends.
    fn launch_pending(&mut self) -> Vec<Vec<f32>> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch = core::mem::take(&mut self.pending);
        let count = batch.len() as u64;
        let elements: u64 = batch.iter().map(|w| w.len() as u64).sum();
        match self.backend.submit_batch(batch) {
            Submission::Sorted(sorted) => {
                self.windows_sorted += count;
                sorted
            }
            Submission::Queued => {
                self.inflight_windows += count;
                self.inflight_elements += elements;
                let mut out = Vec::new();
                while self.backend.inflight_batches() > 1 {
                    out.extend(self.collect_oldest());
                }
                out
            }
        }
    }

    /// Collects the oldest background batch, updating the ledgers.
    fn collect_oldest(&mut self) -> Vec<Vec<f32>> {
        let sorted = self.backend.collect_batch().expect("a batch is in flight");
        self.windows_sorted += sorted.len() as u64;
        self.inflight_windows -= sorted.len() as u64;
        self.inflight_elements -= sorted.iter().map(|w| w.len() as u64).sum::<u64>();
        sorted
    }

    /// Drains every background batch *and* sorts everything still buffered
    /// (the final partial batch at end-of-stream), in stream order.
    pub fn flush(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        while self.backend.inflight_batches() > 0 {
            out.extend(self.collect_oldest());
        }
        out.extend(self.launch_pending());
        while self.backend.inflight_batches() > 0 {
            out.extend(self.collect_oldest());
        }
        out
    }

    /// Simulated time spent sorting (GPU render+overhead, or CPU cycles).
    pub fn sort_time(&self) -> SimTime {
        self.backend.sort_time()
    }

    /// Simulated CPU↔GPU transfer time (zero on CPU engines).
    pub fn transfer_time(&self) -> SimTime {
        self.backend.transfer_time()
    }

    /// Wall-clock overlap ledger (all zero on synchronous backends).
    pub fn wall_clock(&self) -> WallClock {
        self.backend.wall_clock()
    }

    /// GPU execution counters, if the GPU engine is active.
    pub fn gpu_stats(&self) -> Option<&GpuStats> {
        self.backend.gpu_stats()
    }

    /// CPU machine counters, if the CPU engine is active.
    pub fn cpu_stats(&self) -> Option<&CpuStats> {
        self.backend.cpu_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_window(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..100.0)).collect()
    }

    fn sorted_copy(w: &[f32]) -> Vec<f32> {
        let mut s = w.to_vec();
        s.sort_by(f32::total_cmp);
        s
    }

    #[test]
    fn gpu_batches_four_windows() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        let windows: Vec<Vec<f32>> = (0..4).map(|k| random_window(100, k)).collect();
        assert!(p.push_window(windows[0].clone()).is_empty());
        assert!(p.push_window(windows[1].clone()).is_empty());
        assert!(p.push_window(windows[2].clone()).is_empty());
        let out = p.push_window(windows[3].clone());
        assert_eq!(out.len(), 4, "fourth window completes the batch");
        for (k, s) in out.iter().enumerate() {
            assert_eq!(*s, sorted_copy(&windows[k]), "window {k}");
        }
        assert_eq!(p.windows_sorted(), 4);
        // One upload + one readback for the whole batch.
        let gs = p.gpu_stats().unwrap();
        assert_eq!(gs.uploads, 1);
        assert_eq!(gs.readbacks, 1);
    }

    #[test]
    fn flush_handles_partial_batches() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        let w0 = random_window(64, 9);
        let w1 = random_window(50, 10); // ragged tail window
        assert!(p.push_window(w0.clone()).is_empty());
        assert!(p.push_window(w1.clone()).is_empty());
        let out = p.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], sorted_copy(&w0));
        assert_eq!(out[1], sorted_copy(&w1));
        assert!(p.flush().is_empty(), "second flush is a no-op");
    }

    #[test]
    fn cpu_engine_sorts_immediately() {
        let mut p = BatchPipeline::new(Engine::CpuSim);
        let w = random_window(200, 11);
        let out = p.push_window(w.clone());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], sorted_copy(&w));
        assert!(p.sort_time().as_secs() > 0.0);
        assert!(p.transfer_time().is_zero());
        assert!(p.cpu_stats().is_some());
    }

    #[test]
    fn host_engine_is_free() {
        let mut p = BatchPipeline::new(Engine::Host);
        let w = random_window(100, 12);
        let out = p.push_window(w.clone());
        assert_eq!(out[0], sorted_copy(&w));
        assert!(p.sort_time().is_zero());
    }

    #[test]
    fn all_engines_agree() {
        let windows: Vec<Vec<f32>> = (0..5).map(|k| random_window(333, 100 + k)).collect();
        let mut results: Vec<Vec<Vec<f32>>> = Vec::new();
        for engine in [Engine::GpuSim, Engine::CpuSim, Engine::Host] {
            let mut p = BatchPipeline::new(engine);
            let mut sorted: Vec<Vec<f32>> = Vec::new();
            for w in &windows {
                sorted.extend(p.push_window(w.clone()));
            }
            sorted.extend(p.flush());
            assert_eq!(sorted.len(), windows.len());
            results.push(sorted);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn gpu_amortizes_transfers_across_batches() {
        let mut p = BatchPipeline::new(Engine::GpuSim);
        for k in 0..8 {
            let _ = p.push_window(random_window(128, 200 + k));
        }
        let gs = p.gpu_stats().unwrap();
        // 8 windows = 2 batches = 2 uploads + 2 readbacks.
        assert_eq!(gs.uploads, 2);
        assert_eq!(gs.readbacks, 2);
        assert!(p.sort_time() > p.transfer_time());
    }

    #[test]
    fn custom_backend_plugs_in() {
        // A trivial backend: host sorting that reports a fixed sort time.
        struct FixedCost(u64);
        impl crate::pipeline::SortBackend for FixedCost {
            fn engine(&self) -> Engine {
                Engine::Host
            }
            fn sort_batch(&mut self, windows: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
                self.0 += windows.len() as u64;
                windows
                    .into_iter()
                    .map(|mut w| {
                        w.sort_by(f32::total_cmp);
                        w
                    })
                    .collect()
            }
            fn sort_time(&self) -> SimTime {
                SimTime::from_secs(self.0 as f64 * 1e-3)
            }
        }
        let mut p = BatchPipeline::with_backend(Box::new(FixedCost(0)));
        let w = random_window(64, 5);
        let out = p.push_window(w.clone());
        assert_eq!(out[0], sorted_copy(&w));
        assert!((p.sort_time().as_secs() - 1e-3).abs() < 1e-12);
    }
}
