//! A software IEEE 754 binary16 ("half precision") type.
//!
//! The paper's 100 M-element input stream uses 16-bit floating point values
//! (§5). Implementing the format from scratch keeps the workload width
//! faithful without pulling in a dependency: values are *generated and
//! stored* as [`F16`] and widened to `f32` on the way into the GPU texture,
//! exactly as the original system widened them for the 32-bit float
//! rasterization path.
//!
//! Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
//! Conversion from `f32` rounds to nearest, ties to even, and handles
//! subnormals, overflow-to-infinity, and NaN propagation.

use core::cmp::Ordering;
use core::fmt;

/// An IEEE 754 binary16 value.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Most negative finite value (−65504).
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value (2⁻¹⁴).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Machine epsilon (2⁻¹⁰).
    pub const EPSILON: F16 = F16(0x1400);

    /// Builds a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// Values above the binary16 range become ±∞; tiny values flush through
    /// the subnormal range down to ±0; NaN stays NaN.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if man == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Preserve a quiet NaN; keep a non-zero payload bit.
                F16(sign | EXP_MASK | 0x0200 | ((man >> 13) as u16 & MAN_MASK))
            };
        }

        // Unbiased exponent.
        let e = exp - 127;
        if e > 15 {
            // Overflow → infinity.
            return F16(sign | EXP_MASK);
        }
        if e >= -14 {
            // Normal range. 23-bit mantissa → 10 bits with RNE.
            let half_exp = ((e + 15) as u16) << 10;
            let shifted = man >> 13;
            let rest = man & 0x1FFF;
            let mut out = sign | half_exp | (shifted as u16);
            // Round to nearest, ties to even.
            if rest > 0x1000 || (rest == 0x1000 && (shifted & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade or ∞)
            }
            return F16(out);
        }
        if e >= -25 {
            // Subnormal range: the implicit leading 1 becomes explicit and
            // the 24-bit significand shifts right by the exponent deficit
            // (13 base bits plus one per step below 2⁻¹⁴).
            let full_man = man | 0x0080_0000; // 24-bit significand
            let shift_amt = (13 + (-14 - e)) as u32; // 14 ..= 24 for e in [-25, -15]
            let kept = full_man >> shift_amt;
            let rest_mask = (1u32 << shift_amt) - 1;
            let rest = full_man & rest_mask;
            let halfway = 1u32 << (shift_amt - 1);
            let mut out = sign | (kept as u16);
            if rest > halfway || (rest == halfway && (kept & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Widens to `f32` (exact: every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;

        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = man × 2⁻²⁴. Normalize: with the top set
                // bit of `man` at position p, value = 1.frac × 2^(p−24).
                let p = 31 - man.leading_zeros();
                let e = 103 + p; // (p − 24) + 127
                let mantissa = (man << (23 - p)) & 0x007F_FFFF;
                sign | (e << 23) | mantissa
            }
        } else if exp == 0x1F {
            if man == 0 {
                sign | 0x7F80_0000
            } else {
                sign | 0x7FC0_0000 | (man << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// True if NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// True if ±∞.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// True if neither NaN nor infinite.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// True if the sign bit is set (including −0 and NaN with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & SIGN_MASK != 0
    }

    /// A total order on bit patterns matching IEEE `totalOrder` for
    /// non-NaN values: −∞ < … < −0 < +0 is collapsed (−0 == +0 here since
    /// we order by numeric value), NaN sorts after everything.
    pub fn total_cmp(self, other: F16) -> Ordering {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self
                .to_f32()
                .partial_cmp(&other.to_f32())
                .expect("non-NaN comparison cannot fail"),
        }
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> F16 {
        F16::from_f32(x)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_decode() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
    }

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048i32 {
            let h = F16::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "i = {i}");
        }
    }

    #[test]
    fn halves_and_quarters_round_trip() {
        for i in 0..1000 {
            let x = i as f32 * 0.25;
            assert_eq!(F16::from_f32(x).to_f32(), x);
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY); // just past MAX rounding boundary
        assert_eq!(F16::from_f32(65503.9), F16::MAX);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0);
        assert_eq!(F16::from_f32(-1e-10).to_bits(), SIGN_MASK);
        // Smallest subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        let h = F16::from_f32(tiny);
        assert_eq!(h.to_bits(), 1);
        assert_eq!(h.to_f32(), tiny);
        // Halfway between 0 and 2^-24 rounds to even (zero).
        assert_eq!(F16::from_f32(2.0f32.powi(-25)).to_bits(), 0);
    }

    #[test]
    fn subnormal_round_trip_all() {
        // Every subnormal bit pattern must round-trip exactly through f32.
        for bits in 1..0x0400u16 {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits = {bits:#06x}");
        }
    }

    #[test]
    fn all_finite_bit_patterns_round_trip() {
        for bits in 0..=0xFFFFu16 {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                assert_eq!(
                    F16::from_f32(h.to_f32()).to_bits(),
                    bits,
                    "bits = {bits:#06x} val = {}",
                    h.to_f32()
                );
            }
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties to even
        // picks 1 (mantissa 0 is even).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(x), F16::ONE);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to
        // 1 + 2^-9 (mantissa 2, even).
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(y).to_f32(), 1.0 + 2.0f32.powi(-9));
        // Anything past halfway rounds up.
        let z = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(z).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // The largest mantissa in a binade rounds up into the next binade.
        let x = 2047.6f32; // within (2047.5, 2048): nearest half is 2048
        assert_eq!(F16::from_f32(x).to_f32(), 2048.0);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-65504.0f32, -1.5, -0.0, 0.0, 0.25, 1.0, 2048.0, 65504.0];
        for &a in &vals {
            for &b in &vals {
                let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
                assert_eq!(ha.partial_cmp(&hb), a.partial_cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn total_cmp_handles_nan() {
        assert_eq!(F16::NAN.total_cmp(F16::NAN), Ordering::Equal);
        assert_eq!(F16::NAN.total_cmp(F16::INFINITY), Ordering::Greater);
        assert_eq!(F16::NEG_INFINITY.total_cmp(F16::NAN), Ordering::Less);
        assert_eq!(F16::ONE.total_cmp(F16::ZERO), Ordering::Greater);
    }

    #[test]
    fn classification() {
        assert!(F16::ONE.is_finite());
        assert!(!F16::INFINITY.is_finite());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::NAN.is_infinite());
        assert!(F16::MIN.is_sign_negative());
        assert!(!F16::MAX.is_sign_negative());
    }

    #[test]
    fn nan_propagates_through_conversion() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
    }
}
