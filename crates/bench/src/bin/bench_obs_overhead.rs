//! **Observability overhead benchmark** — the price of the telemetry
//! plane on the hot ingest path.
//!
//! Three passes over the same stream on `Engine::Host`, best-of-repeats:
//!
//! * **off** — recorder disabled: every obs call sites is one untaken
//!   branch, the baseline the byte-identity crosscheck tests pin;
//! * **on** — recorder enabled: window-seal counters, gauges, and
//!   latency histograms are live;
//! * **traced** — recorder enabled *and* every chunk of pushes wrapped
//!   in a request-scoped traced span (`span_traced` with a fresh
//!   [`gsm_obs::TraceCtx`]), the worst-case per-request tracing cost.
//!
//! The enabled-vs-disabled overhead is **asserted** under a configurable
//! bound (`--max-overhead`, percent, default 50): metrics that cost more
//! than that on ingest would push users to run blind. The traced figure
//! is recorded but not gated — tracing is per-request opt-in, not an
//! always-on tax.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_obs_overhead [-- \
//!     --elements 2097152 --repeats 3 --max-overhead 50
//!     --out results/BENCH_obs_overhead.json]
//! ```

use std::time::Instant;

use gsm_bench::Args;
use gsm_core::Engine;
use gsm_dsms::StreamEngine;
use gsm_obs::{Recorder, TraceCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    engine: String,
    elements: u64,
    repeats: usize,
    chunk: usize,
    /// Best-of-repeats ingest throughput, recorder disabled.
    ingest_off_eps: f64,
    /// Best-of-repeats ingest throughput, recorder enabled.
    ingest_on_eps: f64,
    /// Best-of-repeats ingest throughput, enabled + per-chunk traced spans.
    ingest_traced_eps: f64,
    /// `(off - on) / off` in percent (negative = noise).
    enabled_overhead_pct: f64,
    /// `(off - traced) / off` in percent.
    traced_overhead_pct: f64,
    /// The asserted ceiling on `enabled_overhead_pct`.
    max_overhead_pct: f64,
    /// Spans recorded during the best traced run.
    traced_spans: u64,
}

fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0.0f32..65_536.0)).collect()
}

fn build(n: u64, rec: Recorder) -> StreamEngine {
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(n)
        .with_recorder(rec);
    let _ = eng.register_quantile(0.01);
    let _ = eng.register_frequency(0.001);
    eng
}

/// One timed ingest pass; `trace_chunks` wraps every chunk in a traced
/// span the way a request-scoped caller would.
fn ingest_once(data: &[f32], rec: &Recorder, chunk: usize, trace_chunks: bool) -> (f64, u64) {
    let mut eng = build(data.len() as u64, rec.clone());
    let start = Instant::now();
    for piece in data.chunks(chunk) {
        let _span = trace_chunks.then(|| rec.span_traced("bench_ingest_chunk", TraceCtx::fresh()));
        for &v in piece {
            eng.push(v);
        }
    }
    eng.flush();
    let secs = start.elapsed().as_secs_f64();
    (data.len() as f64 / secs, rec.span_ring_len() as u64)
}

/// Best-of-repeats throughput for one recorder mode. A fresh recorder per
/// repeat keeps ring evictions out of the timing comparison.
fn best_of(
    data: &[f32],
    repeats: usize,
    chunk: usize,
    make_rec: impl Fn() -> Recorder,
    trace_chunks: bool,
) -> (f64, u64) {
    let mut best = (0.0f64, 0u64);
    for _ in 0..repeats.max(1) {
        let rec = make_rec();
        let run = ingest_once(data, &rec, chunk, trace_chunks);
        if run.0 > best.0 {
            best = run;
        }
    }
    best
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 1 << 21);
    let repeats: usize = args.get_num("repeats", 3);
    let chunk: usize = args.get_num("chunk", 4096);
    let max_overhead: f64 = args.get_num("max-overhead", 50.0);
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_obs_overhead.json")
        .to_string();

    let data = stream(elements, 42);
    println!(
        "# obs overhead benchmark: {elements} elements on Host, chunk {chunk}, \
         best of {repeats}\n"
    );

    let (off_eps, _) = best_of(&data, repeats, chunk, Recorder::disabled, false);
    println!("recorder off:    {off_eps:>12.0} elem/s");
    let (on_eps, _) = best_of(&data, repeats, chunk, Recorder::enabled, false);
    let enabled_overhead_pct = (off_eps - on_eps) / off_eps * 100.0;
    println!("recorder on:     {on_eps:>12.0} elem/s ({enabled_overhead_pct:+.2}%)");
    let (traced_eps, traced_spans) = best_of(&data, repeats, chunk, Recorder::enabled, true);
    let traced_overhead_pct = (off_eps - traced_eps) / off_eps * 100.0;
    println!(
        "on + tracing:    {traced_eps:>12.0} elem/s ({traced_overhead_pct:+.2}%), \
         {traced_spans} spans in ring"
    );

    assert!(
        enabled_overhead_pct <= max_overhead,
        "enabled-recorder ingest overhead {enabled_overhead_pct:.2}% exceeds \
         --max-overhead {max_overhead}%"
    );

    let report = Report {
        bench: "obs_overhead".to_string(),
        engine: "Host".to_string(),
        elements: elements as u64,
        repeats,
        chunk,
        ingest_off_eps: off_eps,
        ingest_on_eps: on_eps,
        ingest_traced_eps: traced_eps,
        enabled_overhead_pct,
        traced_overhead_pct,
        max_overhead_pct: max_overhead,
        traced_spans,
    };
    let payload = serde_json::to_string(&report).expect("report serializes");
    gsm_bench::write_result(
        &out,
        &gsm_bench::envelope_json("gsm-bench/bench_obs_overhead", &payload),
    );
    println!("\nwrote {out}");
}
