#![warn(missing_docs)]

//! A CPU timing model for the paper's CPU-side baselines.
//!
//! Paper §3.2 attributes CPU sorting cost to two architectural effects:
//!
//! 1. **Cache misses** — LaMarca & Ladner's study (paper's \[30\]) shows
//!    quicksort incurs one miss per block while the input fits in cache and
//!    substantially more beyond it; L1/L2/memory access times are ~1–2, ~10,
//!    and ~100 cycles on the paper's 3.4 GHz Pentium IV (16 KB L1 data,
//!    1 MB L2).
//! 2. **Branch mispredictions** — ≥ 17-cycle penalty per mispredict on the
//!    Pentium IV; sorting comparisons are data-dependent and hard to
//!    predict (paper's \[45\]).
//!
//! This crate models exactly those two effects plus a per-operation ALU
//! charge: a [`Machine`] owns a two-level set-associative [`cache`]
//! hierarchy and a two-bit [`branch`] predictor, and instrumented algorithms
//! (in `gsm-sort`) drive it with their real address and branch traces. The
//! reported time is `cycles / clock` — *simulated* Pentium IV time, the same
//! currency as the GPU model's output, so the two sides of every figure are
//! comparable.
//!
//! # Example
//!
//! ```
//! use gsm_cpu::{Machine, CpuCostModel};
//!
//! let mut m = Machine::new(CpuCostModel::pentium4_3400());
//! // A tiny loop: read two values, compare, write one back.
//! m.read(0x1000);
//! m.read(0x2000);
//! m.branch(0x42, true);
//! m.write(0x1000);
//! m.alu(2);
//! assert!(m.cycles() > 0);
//! assert!(m.time().as_secs() > 0.0);
//! ```

pub mod branch;
pub mod cache;
mod machine;
pub mod prefetch;

pub use branch::BranchPredictor;
pub use cache::{Cache, CacheConfig, CacheHierarchy};
pub use machine::{CpuCostModel, CpuStats, Machine};
pub use prefetch::StreamPrefetcher;
