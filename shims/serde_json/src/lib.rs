//! Offline stand-in for `serde_json`: JSON text on top of the serde shim's
//! value tree. Number lexemes survive the trip verbatim, so float fields
//! round-trip bit-exactly (Rust's `Display` emits the shortest
//! representation that parses back to the same value).

#![allow(clippy::all)]

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::write(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(s)?)
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitive_round_trip() {
        let json = super::to_string(&vec![(0.1f32, 3u64)]).unwrap();
        assert_eq!(json, "[[0.1,3]]");
        let back: Vec<(f32, u64)> = super::from_str(&json).unwrap();
        assert_eq!(back, vec![(0.1f32, 3u64)]);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(super::from_str::<u32>("not json").is_err());
        assert!(super::from_str::<u32>("\"string\"").is_err());
    }
}
