//! The prior-work baseline: bitonic merge sort as a fragment program
//! (Purcell et al., the paper's \[40\]; improved by Kipfer et al. \[28\]).
//!
//! Unlike the paper's blend-based sorter, the shader approach computes the
//! comparator *inside a fragment program*: each pixel derives its partner's
//! address, performs a dependent texture fetch, compares, and selects. The
//! paper's instruction-count analysis (§4.5) puts this at **≥ 53
//! instructions per pixel per stage** versus ~6–7 effective cycles for a
//! blend — the order-of-magnitude gap Figure 3 shows.
//!
//! Faithful to the baseline, this sorter uses a single data channel (it does
//! not exploit the RGBA vector trick) and one full-screen pass per network
//! step.

use gsm_gpu::{BlendOp, Device, FragmentProgram, Quad, Rect, Surface, TextureId};

/// Modeled shader cost per fragment, from the paper's analysis of \[40\].
pub const BITONIC_SHADER_INSTRUCTIONS: u32 = 53;

/// Modeled shader cost for Kipfer et al.'s improved routine (the paper's
/// \[28\]: "a performance gain by minimizing the number of instructions in a
/// fragment program and the number of texture operations").
pub const KIPFER_SHADER_INSTRUCTIONS: u32 = 20;

/// Runs the full bitonic network on a single-channel texture resident on
/// the device. `m = W·H` values sort in `log m (log m + 1)/2` shader passes,
/// each followed by a blit.
pub fn bitonic_sort_device(dev: &mut Device, tex: TextureId) {
    bitonic_sort_device_with(dev, tex, BITONIC_SHADER_INSTRUCTIONS)
}

/// [`bitonic_sort_device`] with an explicit per-fragment instruction cost
/// (53 for Purcell et al., 20 for the Kipfer et al. variant).
pub fn bitonic_sort_device_with(dev: &mut Device, tex: TextureId, instructions: u32) {
    let (w, h) = (dev.texture(tex).width(), dev.texture(tex).height());
    assert!(
        w.is_power_of_two() && h.is_power_of_two(),
        "bitonic requires power-of-two texture dimensions, got {w}x{h}"
    );
    let m = (w as usize) * (h as usize);
    dev.resize_framebuffer(w, h);
    // Seed the framebuffer (and keep tex == fb invariant between steps).
    dev.draw_quads(tex, &[Quad::copy(Rect::new(0, 0, w, h))], BlendOp::Replace);

    let full = [Quad::copy(Rect::new(0, 0, w, h))];
    let mut k = 2usize;
    while k <= m {
        let mut j = k / 2;
        while j >= 1 {
            let program = FragmentProgram {
                instructions,
                shader: &move |ctx, frag| {
                    let w = ctx.width() as usize;
                    let i = frag.y as usize * w + frag.x as usize;
                    let l = i ^ j;
                    let own = ctx.fetch(frag.x as i64, frag.y as i64);
                    let partner = ctx.fetch((l % w) as i64, (l / w) as i64);
                    let ascending = i & k == 0;
                    // Keep min at the lower index of an ascending pair.
                    let keep_min = (i < l) == ascending;
                    let mut out = own;
                    out[0] = if keep_min {
                        own[0].min(partner[0])
                    } else {
                        own[0].max(partner[0])
                    };
                    out
                },
            };
            dev.draw_quads_program(tex, &full, &program);
            dev.copy_framebuffer_to_texture(tex);
            j /= 2;
        }
        k *= 2;
    }
}

/// Sorts `values` (single channel, red) on the device including transfers.
/// Length must be a power of two.
pub fn bitonic_sort_surface(dev: &mut Device, values: &[f32]) -> Vec<f32> {
    bitonic_sort_surface_with(dev, values, BITONIC_SHADER_INSTRUCTIONS)
}

/// [`bitonic_sort_surface`] with an explicit shader cost.
pub fn bitonic_sort_surface_with(dev: &mut Device, values: &[f32], instructions: u32) -> Vec<f32> {
    assert!(
        values.len().is_power_of_two(),
        "length must be a power of two"
    );
    let (w, _) = crate::layout::texture_dims(values.len());
    let zeros = vec![0.0f32; values.len()];
    let surface = Surface::from_channels(w, [values, &zeros, &zeros, &zeros]);
    let tex = dev.upload_texture(surface);
    bitonic_sort_device_with(dev, tex, instructions);
    dev.readback_texture(tex).channel(gsm_gpu::Channel::R)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<f32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f32
            })
            .collect()
    }

    #[test]
    fn sorts_random_inputs() {
        for n in [2usize, 8, 64, 512, 2048] {
            let data = pseudo_random(n, 3);
            let mut dev = Device::ideal();
            let sorted = bitonic_sort_surface(&mut dev, &data);
            let mut expect = data.clone();
            expect.sort_by(f32::total_cmp);
            assert_eq!(sorted, expect, "n={n}");
        }
    }

    #[test]
    fn pass_count_is_log_m_log_m_plus_1_over_2() {
        let m = 256usize;
        let data = pseudo_random(m, 9);
        let mut dev = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        let _ = bitonic_sort_surface(&mut dev, &data);
        let log = m.trailing_zeros() as u64;
        let steps = log * (log + 1) / 2;
        // 1 copy + per step (shader pass + blit).
        assert_eq!(dev.stats().passes, 1 + 2 * steps);
        assert_eq!(dev.stats().program_fragments, steps * m as u64);
    }

    #[test]
    fn shader_cost_dwarfs_blend_cost_per_value() {
        // The architectural claim behind Figure 3: per value per step the
        // shader baseline charges 53 instruction cycles while PBSN charges a
        // blend on a quarter of the texels (4 values per texel). The gap
        // only emerges past the per-pass-overhead regime (n ≳ 16 K).
        let m = 32_768usize;
        let data = pseudo_random(m, 5);

        let mut dev_b = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        let _ = bitonic_sort_surface(&mut dev_b, &data);
        let bitonic_time = dev_b.stats().gpu_only_time();

        let (channels, _) = crate::layout::split_channels(&data);
        let surface = crate::layout::surface_from_channels(&channels);
        let mut dev_p = Device::new(gsm_gpu::GpuCostModel::geforce_6800_ultra());
        let _ = crate::pbsn::pbsn_sort_surface(&mut dev_p, surface);
        let pbsn_time = dev_p.stats().gpu_only_time();

        assert!(
            bitonic_time.as_secs() > 5.0 * pbsn_time.as_secs(),
            "bitonic {bitonic_time} should be several times slower than PBSN {pbsn_time}"
        );
    }
}
