//! Engine selection: who sorts the windows, on which simulated device.

/// The sorting engine behind an estimator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The paper's configuration: PBSN rasterization sorting on the
    /// simulated GeForce 6800 Ultra, 4 windows per batch, CPU summary
    /// maintenance.
    GpuSim,
    /// The CPU baseline: instrumented quicksort on the simulated 3.4 GHz
    /// Pentium IV.
    CpuSim,
    /// Host `slice::sort` with zero simulated time — functional testing and
    /// debugging only.
    Host,
    /// Real host parallelism: each window's four PBSN channel lanes sort
    /// concurrently on a `std::thread` worker pool (branchless key sort)
    /// and merge on the submitting thread, with the batch sorting in the
    /// background while the next window fills. Zero simulated time, like
    /// [`Engine::Host`], and byte-identical answers; the ledger instead
    /// records *wall-clock* sort/blocked time so the overlap saving is
    /// measurable.
    ParallelHost,
}

impl Engine {
    /// Every backend, in the order the differential harnesses fan out:
    /// simulated devices first, host references after.
    pub const ALL: [Engine; 4] = [
        Engine::GpuSim,
        Engine::CpuSim,
        Engine::Host,
        Engine::ParallelHost,
    ];

    /// Display label used by the figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            Engine::GpuSim => "GPU (6800 Ultra, simulated)",
            Engine::CpuSim => "CPU (P4 3.4 GHz, simulated)",
            Engine::Host => "host reference",
            Engine::ParallelHost => "host parallel (lane worker pool)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        assert_ne!(Engine::GpuSim.label(), Engine::CpuSim.label());
        assert_ne!(Engine::CpuSim.label(), Engine::Host.label());
        assert_ne!(Engine::Host.label(), Engine::ParallelHost.label());
    }
}
