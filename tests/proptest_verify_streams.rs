//! Property tests for the previously-untested stream paths —
//! `time_sliding.rs` and `correlated.rs` — driven by the adversarial
//! generators from `gsm-verify`: exact timestamp-boundary expiry,
//! empty-window queries, and checkpoint/restore mid-decay.

use gsm::sketch::time_sliding::{TimeSlidingFrequency, TimeSlidingQuantile};
use gsm::sketch::CorrelatedSum;
use gsm::verify::{Family, SplitMix, StreamSpec};
use proptest::prelude::*;

/// A generator family index plus seed, mapped onto the gsm-verify
/// adversarial streams.
fn spec(n: usize, window: usize) -> impl Strategy<Value = StreamSpec> {
    (0..Family::ALL.len(), 0u64..1_000_000).prop_map(move |(f, seed)| StreamSpec {
        family: Family::ALL[f],
        seed,
        n,
        window,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Expiry is strict at the exact timestamp boundary: a block whose
    /// newest element is *exactly* `horizon` old survives; one epsilon
    /// older is gone. Dyadic horizons keep `(t + horizon) - horizon == t`
    /// exact in f64, so the test exercises the `<` comparison at true
    /// equality rather than float noise. Pushed through adversarial value
    /// streams so boundary handling is independent of the data shape.
    #[test]
    fn time_expiry_at_exact_boundary(s in spec(256, 64), horizon_exp in -1i32..3) {
        let data = s.generate();
        let horizon = 2.0f64.powi(horizon_exp);
        let quantum = horizon / 16.0;
        let mut sf = TimeSlidingFrequency::with_quantum(0.05, horizon, quantum);
        // One old block at t=0..quantum/2, then silence until the boundary.
        let hot = 12345.0f32;
        for i in 0..64 {
            sf.push(i as f64 * quantum / 128.0, hot);
        }
        let newest_old = 63.0 * quantum / 128.0;

        // An arrival exactly `horizon` after the old block's newest element:
        // `newest < now - horizon` is false at equality, so it survives.
        sf.push(newest_old + horizon, data[0]);
        prop_assert!(sf.estimate(hot) > 0, "exact-boundary block must survive");

        // The next instant past the boundary expires it.
        sf.push(newest_old + horizon + quantum * 1e-6 + f64::EPSILON, data[1 % data.len()]);
        prop_assert_eq!(sf.estimate(hot), 0, "past-boundary block must expire");
    }

    /// Emptied windows answer sanely: after a long quiet gap only the
    /// straggler remains — frequency estimates of expired values are 0,
    /// heavy hitters contain exactly the survivor, and the quantile query
    /// answers from the surviving population alone.
    #[test]
    fn empty_window_queries_after_total_expiry(s in spec(512, 64), gap in 10.0f64..1000.0) {
        let data = s.generate();
        let mut sq = TimeSlidingQuantile::new(0.05, 1.0);
        let mut sf = TimeSlidingFrequency::new(0.05, 1.0);
        for (i, &v) in data.iter().enumerate() {
            let t = i as f64 / 1000.0;
            sq.push(t, v);
            sf.push(t, v);
        }
        // A lone straggler far beyond the horizon empties everything else.
        sq.push(gap + 100.0, 77.0);
        sf.push(gap + 100.0, 77.0);
        prop_assert_eq!(sq.query(0.5), 77.0);
        prop_assert_eq!(sq.covered(), 1);
        prop_assert_eq!(sf.estimate(data[0]), 0, "expired values vanish");
        let hh = sf.heavy_hitters(0.9);
        prop_assert_eq!(hh.len(), 1);
        prop_assert_eq!(hh[0].0, 77.0);
    }

    /// Checkpoint/restore mid-decay: serializing a half-expired summary
    /// and continuing the stream on the restored copy gives bit-identical
    /// answers to the original that never stopped.
    #[test]
    fn time_sliding_checkpoint_restore_mid_decay(s in spec(2048, 256)) {
        let data = s.generate();
        let (head, tail) = data.split_at(data.len() / 2);
        let mut live_q = TimeSlidingQuantile::new(0.05, 1.0);
        let mut live_f = TimeSlidingFrequency::new(0.05, 1.0);
        for (i, &v) in head.iter().enumerate() {
            let t = i as f64 / 500.0; // >1 horizon of data: decay is active
            live_q.push(t, v);
            live_f.push(t, v);
        }
        let json_q = serde_json::to_string(&live_q).expect("serialize quantile");
        let json_f = serde_json::to_string(&live_f).expect("serialize frequency");
        let mut restored_q: TimeSlidingQuantile =
            serde_json::from_str(&json_q).expect("restore quantile");
        let mut restored_f: TimeSlidingFrequency =
            serde_json::from_str(&json_f).expect("restore frequency");

        for (i, &v) in tail.iter().enumerate() {
            let t = (head.len() + i) as f64 / 500.0;
            live_q.push(t, v);
            restored_q.push(t, v);
            live_f.push(t, v);
            restored_f.push(t, v);
        }
        prop_assert_eq!(live_q.covered(), restored_q.covered());
        for phi in [0.1, 0.5, 0.9] {
            prop_assert_eq!(live_q.query(phi).to_bits(), restored_q.query(phi).to_bits());
        }
        prop_assert_eq!(live_f.covered(), restored_f.covered());
        for &v in &data[..8] {
            prop_assert_eq!(live_f.estimate(v), restored_f.estimate(v));
        }
    }

    /// Correlated-sum bounds bracket the exact prefix mass on adversarial
    /// x-streams (y drawn deterministically from the seed), with the
    /// documented `ε·N·y_max` rank slack.
    #[test]
    fn correlated_bounds_contain_exact_on_adversarial_streams(s in spec(4096, 512)) {
        let xs = s.generate();
        let mut rng = SplitMix::new(s.seed ^ 0x9e3779b97f4a7c15);
        let pairs: Vec<(f32, f32)> = xs
            .iter()
            .map(|&x| (x, rng.unit_f32() * 10.0))
            .collect();
        let eps = 0.02;
        let window = 512;
        let mut cs = CorrelatedSum::new(eps, window, pairs.len() as u64);
        for chunk in pairs.chunks(window) {
            let mut w = chunk.to_vec();
            w.sort_by(|a, b| a.0.total_cmp(&b.0));
            cs.push_sorted_window(&w);
        }
        let mut sorted = pairs.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for phi in [0.25, 0.5, 0.9] {
            let r = ((phi * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact: f64 = sorted[..r].iter().map(|&(_, y)| y as f64).sum();
            let (lo, hi) = cs.query_sum(phi);
            let slack = eps * pairs.len() as f64 * 10.0;
            prop_assert!(
                lo - slack <= exact && exact <= hi + slack,
                "phi={}: [{},{}] vs {}", phi, lo, hi, exact
            );
        }
    }

    /// Correlated-sum checkpoint/restore mid-stream: the restored summary
    /// continues to bit-identical answers.
    #[test]
    fn correlated_checkpoint_restore_mid_stream(s in spec(2048, 256)) {
        let xs = s.generate();
        let mut rng = SplitMix::new(s.seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1));
        let pairs: Vec<(f32, f32)> = xs
            .iter()
            .map(|&x| (x, rng.unit_f32() * 5.0))
            .collect();
        let window = 256;
        let mut live = CorrelatedSum::new(0.05, window, pairs.len() as u64);
        let chunks: Vec<Vec<(f32, f32)>> = pairs
            .chunks(window)
            .map(|c| {
                let mut w = c.to_vec();
                w.sort_by(|a, b| a.0.total_cmp(&b.0));
                w
            })
            .collect();
        let mid = chunks.len() / 2;
        for w in &chunks[..mid] {
            live.push_sorted_window(w);
        }
        let json = serde_json::to_string(&live).expect("serialize");
        let mut restored: CorrelatedSum = serde_json::from_str(&json).expect("restore");
        for w in &chunks[mid..] {
            live.push_sorted_window(w);
            restored.push_sorted_window(w);
        }
        prop_assert_eq!(live.count(), restored.count());
        prop_assert!((live.total_sum() - restored.total_sum()).abs() < 1e-9);
        for phi in [0.25, 0.5, 0.75, 1.0] {
            let (llo, lhi) = live.query_sum(phi);
            let (rlo, rhi) = restored.query_sum(phi);
            prop_assert_eq!(llo.to_bits(), rlo.to_bits());
            prop_assert_eq!(lhi.to_bits(), rhi.to_bits());
        }
    }
}
