//! Integration tests for the DSMS layer: shared pipelines, engine
//! equivalence, and shedding behaviour end to end through the facade.

use gsm::core::{BitPrefixHierarchy, Engine};
use gsm::dsms::{run_at_rate, QueryAnswer, StreamEngine};
use gsm::sketch::exact::ExactStats;
use gsm::stream::ZipfGen;

fn zipf(n: usize, seed: u64) -> Vec<f32> {
    ZipfGen::new(seed, 2048, 1.1).take(n).collect()
}

#[test]
fn full_dashboard_on_every_engine() {
    let data = zipf(80_000, 3);
    let oracle = ExactStats::new(&data);
    for engine in [Engine::GpuSim, Engine::CpuSim, Engine::Host] {
        let mut eng = StreamEngine::new(engine).with_n_hint(data.len() as u64);
        let q = eng.register_quantile(0.005);
        let f = eng.register_frequency(0.0005);
        let h = eng.register_hhh(0.0005, BitPrefixHierarchy::new(vec![5]));
        eng.push_all(data.iter().copied());

        // Quantile within eps.
        let med = eng.quantile(q, 0.5);
        assert!(
            oracle.quantile_rank_error(0.5, med) <= 0.005,
            "{engine:?}: median {med}"
        );
        // Heavy hitters: rank 0 of the zipf law dominates.
        let hot = eng.heavy_hitters(f, 0.02);
        assert!(hot.iter().any(|&(v, _)| v == 0.0), "{engine:?}: {hot:?}");
        // HHH returns at least the hot leaf or its prefix.
        let hier = eng.hhh(h, 0.05);
        assert!(!hier.is_empty(), "{engine:?}");

        // Generic interface agrees with the typed one.
        match eng.query(q, 0.5) {
            QueryAnswer::Quantile(v) => assert_eq!(v, med),
            other => panic!("wrong answer kind: {other:?}"),
        }
    }
}

#[test]
fn dsms_engines_are_bit_identical() {
    let data = zipf(50_000, 4);
    let answers: Vec<_> = [
        Engine::GpuSim,
        Engine::CpuSim,
        Engine::Host,
        Engine::ParallelHost,
    ]
    .into_iter()
    .map(|e| {
        let mut eng = StreamEngine::new(e).with_n_hint(50_000);
        let q = eng.register_quantile(0.01);
        let f = eng.register_frequency(0.001);
        eng.push_all(data.iter().copied());
        (eng.quantile(q, 0.9), eng.heavy_hitters(f, 0.01))
    })
    .collect();
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    assert_eq!(answers[2], answers[3]);
}

#[test]
fn checkpoint_drains_the_overlapped_sort() {
    // Under `ParallelHost` one window is always sorting in the background;
    // a checkpoint taken mid-stream must drain it into the sketches, not
    // silently drop it. Cross-restore onto plain `Host` and compare with an
    // all-`Host` engine that saw the identical stream: any lost window
    // would desync the counts and the answers.
    let data = zipf(30_000, 9);
    let build = |engine: Engine| {
        let mut eng = StreamEngine::new(engine).with_n_hint(data.len() as u64);
        let q = eng.register_quantile(0.01);
        let f = eng.register_frequency(0.001);
        (eng, q, f)
    };
    let (mut overlapped, q, f) = build(Engine::ParallelHost);
    let (mut reference, rq, rf) = build(Engine::Host);

    // Split mid-window so the checkpoint also carries a partial buffer.
    let window = {
        overlapped.seal();
        overlapped.window()
    };
    let cut = 2 * window + window / 3;
    assert!(
        cut < data.len(),
        "stream long enough to continue after restore"
    );
    for &v in &data[..cut] {
        overlapped.push(v);
        reference.push(v);
    }

    let json = overlapped.checkpoint();
    let mut restored = StreamEngine::restore(Engine::Host, &json).expect("valid checkpoint");
    assert_eq!(
        restored.count(),
        reference.count(),
        "no window lost in flight"
    );

    for &v in &data[cut..] {
        restored.push(v);
        reference.push(v);
    }
    assert_eq!(
        restored.quantile(q, 0.5).to_bits(),
        reference.quantile(rq, 0.5).to_bits()
    );
    assert_eq!(
        restored.heavy_hitters(f, 0.01),
        reference.heavy_hitters(rf, 0.01)
    );
}

#[test]
fn gpu_sustains_a_higher_rate_than_cpu() {
    // With a large shared window (fine eps), the GPU engine's service rate
    // exceeds the CPU engine's — the §1 "keep up with the update rate"
    // argument, measured through the DSMS layer.
    let data = zipf(1 << 19, 5);
    let rate_for = |engine: Engine| {
        let mut eng = StreamEngine::new(engine).with_n_hint(data.len() as u64);
        let _ = eng.register_frequency(1.0 / 32_768.0);
        eng.push_all(data.iter().copied());
        eng.flush();
        eng.service_rate()
    };
    let gpu = rate_for(Engine::GpuSim);
    let cpu = rate_for(Engine::CpuSim);
    assert!(
        gpu > cpu,
        "GPU {gpu:.0}/s must beat CPU {cpu:.0}/s at 32K windows"
    );
}

#[test]
fn shedding_keeps_answers_usable_under_overload() {
    let data = zipf(300_000, 6);
    let mut probe = StreamEngine::new(Engine::CpuSim).with_n_hint(data.len() as u64);
    let pq = probe.register_quantile(0.01);
    probe.push_all(data.iter().copied());
    let exact_ish = probe.quantile(pq, 0.5);
    let capacity = probe.service_rate();

    let mut eng = StreamEngine::new(Engine::CpuSim).with_n_hint(data.len() as u64);
    let q = eng.register_quantile(0.01);
    let report = run_at_rate(&mut eng, data.iter().copied(), capacity * 3.0);
    assert!(report.shed_fraction() > 0.4, "{report:?}");

    // Uniform shedding keeps quantiles honest: the shed-stream median must
    // sit close to the full-stream one (zipf over 2048 values).
    let shed_median = eng.quantile(q, 0.5);
    assert!(
        (shed_median - exact_ish).abs() <= 2.0,
        "median drifted under shedding: {shed_median} vs {exact_ish}"
    );
}
