#![warn(missing_docs)]

//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper's
//! evaluation (see `DESIGN.md`'s experiment index). This library provides
//! the common pieces: a tiny CLI parser, aligned table printing with CSV
//! output, and workload construction.

use std::collections::HashMap;

/// Minimal `--key value` / `--flag` argument parser.
///
/// Recognized forms: `--key value` and bare `--flag` (stored as "true").
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut it = iter.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let val = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                values.insert(key.to_string(), val);
            }
        }
        Args { values }
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

/// An aligned text table that can also emit CSV (`--csv`).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints aligned columns, or CSV when `csv` is true.
    pub fn print(&self, csv: bool) {
        if csv {
            println!("{}", self.headers.join(","));
            for r in &self.rows {
                println!("{}", r.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for r in &self.rows {
            println!("{}", line(r));
        }
    }
}

/// Formats a simulated time as milliseconds with 3 decimals (the paper's
/// plots are in seconds/milliseconds; a fixed unit makes series comparable).
pub fn ms(t: gsm_model::SimTime) -> String {
    format!("{:.3}", t.as_millis())
}

/// Human-readable element counts: `16K`, `8M`.
pub fn human_n(n: usize) -> String {
    if n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::parse_from(["--n", "1000", "--csv", "--engine", "gpu"].map(String::from));
        assert_eq!(a.get_num("n", 0usize), 1000);
        assert!(a.flag("csv"));
        assert_eq!(a.get("engine"), Some("gpu"));
        assert!(!a.flag("missing"));
        assert_eq!(a.get_num("missing", 7u32), 7);
    }

    #[test]
    fn table_rows_align() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        t.print(false);
        t.print(true);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn humanized_counts() {
        assert_eq!(human_n(16 << 10), "16K");
        assert_eq!(human_n(8 << 20), "8M");
        assert_eq!(human_n(1000), "1000");
    }
}
