//! **Ingest benchmark** — scalar `push` vs columnar `push_batch`
//! throughput through the full `StreamEngine` stack.
//!
//! The batched ingest plane exists to amortize per-element work: one
//! router pass per batch instead of one virtual call per element, slice
//! memcpys into the window buffers instead of per-element pushes, and
//! window-boundary bookkeeping once per chunk. This harness measures the
//! payoff end to end: the same skewed stream is ingested through the
//! public scalar API (`push` per element) and through `push_batch` at a
//! sweep of batch lengths, at shard counts 1 and 4 on
//! `Engine::ParallelHost`.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin bench_ingest [-- --elements 4194304
//!     --window 32768 --repeats 3 --min-speedup 1.3 --out results/BENCH_ingest.json]
//! ```
//!
//! Two things are asserted in-binary, not just reported:
//!
//! * **Byte identity** — every batched run's checkpoint envelope must be
//!   byte-identical to the scalar run's at the same shard count (same
//!   seals, same summary state, same answers).
//! * **The speedup floor** — the best batched throughput at k = 4 must be
//!   at least `--min-speedup` (default 1.3×) over the scalar baseline.
//!   Pass `--min-speedup 0` to measure without gating.

use std::time::Instant;

use gsm_bench::Args;
use gsm_core::Engine;
use gsm_dsms::StreamEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One measured ingest configuration.
#[derive(serde::Serialize)]
struct IngestRun {
    shards: usize,
    /// Batch length, or 0 for the scalar `push` loop.
    batch: usize,
    elements: u64,
    /// Best-of-`repeats` wall-clock seconds for ingest + flush.
    wall_secs: f64,
    /// Elements per wall-clock second.
    throughput_eps: f64,
    /// Throughput relative to the scalar baseline at the same shard count.
    speedup_vs_scalar: f64,
}

#[derive(serde::Serialize)]
struct Report {
    bench: String,
    engine: String,
    elements: u64,
    window: usize,
    repeats: usize,
    host_threads: usize,
    /// The asserted k = 4 batch-over-scalar floor (0 = not gated).
    min_speedup: f64,
    /// Best batched throughput at k = 4 over the k = 4 scalar baseline.
    best_speedup_k4: f64,
    runs: Vec<IngestRun>,
}

/// A skewed integer-id stream (hot head + long tail).
fn stream(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.random_range(0..2u32) == 0 {
                rng.random_range(0..16u32) as f32
            } else {
                rng.random_range(16..4096u32) as f32
            }
        })
        .collect()
}

/// Builds the benchmark engine: one frequency query whose ε pins the
/// shared window to `window`.
fn build(window: usize, shards: usize, n: usize) -> StreamEngine {
    let mut eng = StreamEngine::new(Engine::ParallelHost)
        .with_n_hint(n as u64)
        .with_shards(shards);
    eng.register_frequency(1.0 / window as f64);
    eng
}

/// Ingests the stream once and returns (wall seconds, checkpoint).
fn ingest_once(data: &[f32], window: usize, shards: usize, batch: usize) -> (f64, String) {
    let mut eng = build(window, shards, data.len());
    eng.seal();
    assert_eq!(eng.window(), window, "ε must pin the shared window");
    let start = Instant::now();
    if batch == 0 {
        for &v in data {
            eng.push(v);
        }
    } else {
        for chunk in data.chunks(batch) {
            eng.push_batch(chunk);
        }
    }
    eng.flush();
    let wall = start.elapsed().as_secs_f64();
    (wall, eng.checkpoint())
}

/// Best-of-`repeats` run for one configuration; the checkpoint must be
/// identical across repeats (ingest is deterministic).
fn run(data: &[f32], window: usize, shards: usize, batch: usize, repeats: usize) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut checkpoint = String::new();
    for _ in 0..repeats.max(1) {
        let (wall, cp) = ingest_once(data, window, shards, batch);
        if !checkpoint.is_empty() {
            assert_eq!(cp, checkpoint, "repeat runs must be deterministic");
        }
        checkpoint = cp;
        best = best.min(wall);
    }
    (best, checkpoint)
}

fn main() {
    let args = Args::parse();
    let elements: usize = args.get_num("elements", 1 << 22);
    let window: usize = args.get_num("window", 1 << 15);
    let repeats: usize = args.get_num("repeats", 3);
    let min_speedup: f64 = args.get_num("min-speedup", 1.3);
    let out = args
        .get("out")
        .unwrap_or("results/BENCH_ingest.json")
        .to_string();

    let data = stream(elements, 42);
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let batches = [64usize, 1024, 8192, 65536];

    println!(
        "# ingest benchmark: {elements} elements, window {window}, {threads} host thread(s)\n"
    );

    let mut runs = Vec::new();
    let mut best_speedup_k4 = 0.0f64;
    for &k in &[1usize, 4] {
        let (scalar_wall, scalar_cp) = run(&data, window, k, 0, repeats);
        let scalar_eps = elements as f64 / scalar_wall;
        println!("k={k}: scalar        {scalar_eps:>12.0} elem/s ({scalar_wall:.3}s)");
        runs.push(IngestRun {
            shards: k,
            batch: 0,
            elements: elements as u64,
            wall_secs: scalar_wall,
            throughput_eps: scalar_eps,
            speedup_vs_scalar: 1.0,
        });
        for &batch in &batches {
            let (wall, cp) = run(&data, window, k, batch, repeats);
            // The identity contract, asserted on the real benchmark
            // workload: batch ingest must leave the engine byte-identical
            // to the scalar loop.
            assert_eq!(
                cp, scalar_cp,
                "batched checkpoint diverged from scalar at k={k} batch={batch}"
            );
            let eps = elements as f64 / wall;
            let speedup = eps / scalar_eps;
            if k == 4 {
                best_speedup_k4 = best_speedup_k4.max(speedup);
            }
            println!("k={k}: batch={batch:<6} {eps:>12.0} elem/s ({wall:.3}s)  {speedup:>5.2}x");
            runs.push(IngestRun {
                shards: k,
                batch,
                elements: elements as u64,
                wall_secs: wall,
                throughput_eps: eps,
                speedup_vs_scalar: speedup,
            });
        }
    }

    println!("\nbest k=4 batch-over-scalar speedup: {best_speedup_k4:.2}x");
    assert!(
        best_speedup_k4 >= min_speedup,
        "batched ingest at k=4 must be at least {min_speedup}x over scalar, got {best_speedup_k4:.2}x"
    );

    let report = Report {
        bench: "ingest".to_string(),
        engine: "ParallelHost".to_string(),
        elements: elements as u64,
        window,
        repeats,
        host_threads: threads,
        min_speedup,
        best_speedup_k4,
        runs,
    };
    let payload = serde_json::to_string(&report).expect("report serializes");
    gsm_bench::write_result(
        &out,
        &gsm_bench::envelope_json("gsm-bench/bench_ingest", &payload),
    );
    println!("wrote {out}");
}
