#![warn(missing_docs)]

//! A miniature data-stream management layer (DSMS).
//!
//! The paper opens with the systems problem its algorithms serve (§1):
//! *"the underlying data stream management system (DSMS) can become
//! resource limited. This problem is mainly due to insufficient time for
//! the underlying CPU to process each stream element … In such cases, some
//! DSMS resort to load-shedding, i.e. dropping excess data items. … Ideally,
//! we would like to develop new hardware-accelerated solutions that can
//! offer improved processing power … to keep up with the update rate."*
//!
//! This crate supplies that surrounding system:
//!
//! * [`engine::StreamEngine`] — a registry of **continuous queries**
//!   (quantiles, heavy hitters, hierarchical heavy hitters) that all feed
//!   from **one shared window pipeline**: the stream is sorted once per
//!   window on the configured engine and every registered summary folds in
//!   the same sorted run. Sharing is what makes the co-processor pay off
//!   system-wide — the expensive phase is common to every query.
//! * [`snapshot`] — immutable **published snapshots** of the absorbed
//!   summary state behind an epoch-pointer registry, so concurrent query
//!   readers (the `gsm-serve` frontend) never contend with ingestion.
//! * [`durable`] — **crash safety**: [`DurableOptions`] attaches a
//!   segmented write-ahead log and incremental checkpoints (via
//!   `gsm-durable`) to an engine, and
//!   [`engine::StreamEngine::recover_from`] rebuilds one after a crash,
//!   byte-identical to an uncrashed run up to the last durable seal.
//! * [`shedding`] — arrival-rate modeling and **load shedding**: given an
//!   offered rate and the engine's measured (simulated) service rate, a
//!   uniform decimating shedder drops the excess, and the report quantifies
//!   both the shed fraction and the statistical price.
//!
//! Everything runs in simulated time, so "can this configuration keep up
//! with 10 M elements/s?" is answerable on a laptop.

pub mod builder;
pub mod durable;
pub mod engine;
pub mod shedding;
pub mod snapshot;

pub use builder::{BuildError, EngineBuilder};
pub use durable::{DurableOptions, RecoveryReport};
pub use engine::{QueryAnswer, QueryId, QueryRequest, StreamEngine, ValueBatch, WindowTap};
pub use shedding::{run_at_rate, LoadShedder, ShedReport};
pub use snapshot::{EngineSnapshot, QueryKind, SnapshotError, SnapshotRegistry};
