//! Network monitoring: finding the dominant flows in a high-rate packet
//! stream — the paper's motivating DSMS scenario (§1: "high-speed
//! networking … massive volumes of data").
//!
//! A synthetic packet trace draws flow ids from a Zipf law (a classic model
//! of flow-size skew). The frequency estimator must return every flow above
//! the support threshold (no false negatives) while touching only a bounded
//! summary; the GPU engine sorts each ⌈1/ε⌉-packet window.
//!
//! ```text
//! cargo run --release --example network_heavy_hitters
//! ```

use gsm::core::{Engine, FrequencyEstimator};
use gsm::sketch::exact::ExactStats;
use gsm::stream::ZipfGen;

fn main() {
    let packets = 2_000_000usize;
    let flows = 50_000usize;
    let eps = 0.0005; // windows of 2 000 packets
    let support = 0.004; // report flows above 0.4% of traffic

    println!("trace: {packets} packets over {flows} flows, Zipf(1.05)");
    let trace: Vec<f32> = ZipfGen::new(99, flows, 1.05).take(packets).collect();

    // Run the estimator on both engines; answers must be identical.
    let mut reports = Vec::new();
    for engine in [Engine::GpuSim, Engine::CpuSim] {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(trace.iter().copied());
        let hh = est.heavy_hitters(support);
        println!(
            "{:<30} simulated time {:>12}, summary {:>6} entries",
            est.engine().label(),
            format!("{}", est.total_time()),
            est.entry_count()
        );
        reports.push((hh, est.breakdown()));
    }
    assert_eq!(reports[0].0, reports[1].0, "engines must agree exactly");

    // Verify against ground truth.
    let oracle = ExactStats::new(&trace);
    let threshold = (support * packets as f64) as u64;
    let truth = oracle.heavy_hitters(threshold);
    let answered: Vec<f32> = reports[0].0.iter().map(|&(v, _)| v).collect();
    for (v, c) in &truth {
        assert!(answered.contains(v), "flow {v} ({c} packets) missed");
    }

    println!(
        "\nflows >= {:.1}% of traffic (threshold {threshold} packets):",
        support * 100.0
    );
    println!(
        "{:>10}  {:>10}  {:>10}  {:>9}",
        "flow", "estimated", "exact", "err"
    );
    for &(v, est_count) in &reports[0].0 {
        let exact = oracle.frequency(v);
        // Entries below the (s-eps) floor are possible false positives of
        // the eps-approximate query; the guarantee is no *negatives*.
        println!(
            "{:>10}  {:>10}  {:>10}  {:>8.3}%",
            v,
            est_count,
            exact,
            100.0 * (exact as f64 - est_count as f64) / packets as f64
        );
    }
    println!(
        "\nrecall: {}/{} true heavy flows returned (guaranteed 100%)",
        truth.iter().filter(|(v, _)| answered.contains(v)).count(),
        truth.len()
    );
    println!("GPU time split: {}", reports[0].1);
}
