//! A uniform interface over all sorting engines, returning sorted data plus
//! a simulated-time report — the unit the Figure 3 harness sweeps.

use gsm_cpu::{CpuCostModel, CpuStats, Machine};
use gsm_gpu::{Device, GpuCostModel, GpuStats};
use gsm_model::SimTime;

use crate::bitonic::bitonic_sort_surface_with;
use crate::channels::gpu_sort_rgba;
use crate::cpu::{merge_sort, quicksort, radix_sort};
use crate::layout::{pad_pow2, strip_padding};

/// The engines compared in Figure 3 of the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortEngine {
    /// The paper's algorithm: 4-channel PBSN rasterization sort + CPU merge.
    GpuPbsn,
    /// Prior GPU work: single-channel fragment-program bitonic sort
    /// (Purcell et al. \[40\]).
    GpuBitonic,
    /// Intel-compiler-style quicksort: inlined comparisons, Hyper-Threading
    /// parallelization.
    CpuQuicksort,
    /// `stdlib.h` `qsort`: comparator via function pointer (the MSVC
    /// baseline).
    CpuQsort,
    /// Kipfer et al.'s improved shader bitonic sort (the paper's \[28\]).
    GpuBitonicKipfer,
    /// Branch-free LSD radix sort on the simulated CPU (extra baseline:
    /// avoids mispredicts, pays scatter misses).
    CpuRadix,
    /// Bottom-up merge sort on the simulated CPU (extra baseline:
    /// streaming access pattern).
    CpuMergeSort,
}

impl SortEngine {
    /// The four engines of Figure 3, in plot order.
    pub const ALL: [SortEngine; 4] = [
        SortEngine::GpuPbsn,
        SortEngine::GpuBitonic,
        SortEngine::CpuQuicksort,
        SortEngine::CpuQsort,
    ];

    /// Every engine, including the extra baselines beyond Figure 3.
    pub const EXTENDED: [SortEngine; 7] = [
        SortEngine::GpuPbsn,
        SortEngine::GpuBitonic,
        SortEngine::GpuBitonicKipfer,
        SortEngine::CpuQuicksort,
        SortEngine::CpuQsort,
        SortEngine::CpuRadix,
        SortEngine::CpuMergeSort,
    ];

    /// Display label used by the figure harnesses.
    pub fn label(self) -> &'static str {
        match self {
            SortEngine::GpuPbsn => "GPU PBSN (ours)",
            SortEngine::GpuBitonic => "GPU bitonic [40]",
            SortEngine::GpuBitonicKipfer => "GPU bitonic (Kipfer [28])",
            SortEngine::CpuQuicksort => "CPU quicksort (Intel)",
            SortEngine::CpuQsort => "CPU qsort (MSVC)",
            SortEngine::CpuRadix => "CPU radix (LSD)",
            SortEngine::CpuMergeSort => "CPU merge sort",
        }
    }
}

/// The outcome of one sort: the data plus where the simulated time went.
#[derive(Clone, Debug)]
pub struct SortReport {
    /// The sorted values.
    pub sorted: Vec<f32>,
    /// Total simulated time.
    pub total_time: SimTime,
    /// GPU rendering + pass overhead (zero for CPU engines).
    pub gpu_time: SimTime,
    /// CPU↔GPU bus time (zero for CPU engines).
    pub transfer_time: SimTime,
    /// CPU time: the whole sort for CPU engines, the 4-way merge for
    /// `GpuPbsn`.
    pub cpu_time: SimTime,
    /// GPU execution counters, if a GPU engine ran.
    pub gpu_stats: Option<GpuStats>,
    /// CPU machine counters, if a CPU machine ran.
    pub cpu_stats: Option<CpuStats>,
}

/// A configured sorting engine.
///
/// `Sorter::new` picks the calibrated testbed models; override them for
/// sensitivity studies.
///
/// ```
/// use gsm_sort::{SortEngine, Sorter};
///
/// let report = Sorter::new(SortEngine::GpuPbsn).sort(&[3.0, 1.0, 2.0]);
/// assert_eq!(report.sorted, vec![1.0, 2.0, 3.0]);
/// assert!(report.total_time.as_secs() > 0.0); // simulated 6800 Ultra time
/// ```
#[derive(Clone, Debug)]
pub struct Sorter {
    engine: SortEngine,
    gpu_model: GpuCostModel,
    cpu_model: CpuCostModel,
    /// Throughput factor applied to CPU sort time. The paper's Intel
    /// baseline is "a parallelized implementation of Quicksort … balanced
    /// for the threaded scenario" on a Hyper-Threaded Pentium IV; HT
    /// typically buys 20–40%, modeled as 0.72×.
    cpu_time_scale: f64,
}

impl Sorter {
    /// A sorter with the paper's calibrated device models.
    pub fn new(engine: SortEngine) -> Self {
        let (cpu_model, cpu_time_scale) = match engine {
            SortEngine::CpuQsort => (CpuCostModel::pentium4_3400_qsort(), 1.0),
            SortEngine::CpuQuicksort => (CpuCostModel::pentium4_3400(), 0.72),
            // GPU engines still need a CPU model for the merge.
            _ => (CpuCostModel::pentium4_3400(), 1.0),
        };
        Sorter {
            engine,
            gpu_model: GpuCostModel::geforce_6800_ultra(),
            cpu_model,
            cpu_time_scale,
        }
    }

    /// The engine in use.
    pub fn engine(&self) -> SortEngine {
        self.engine
    }

    /// Overrides the GPU cost model.
    pub fn with_gpu_model(mut self, model: GpuCostModel) -> Self {
        self.gpu_model = model;
        self
    }

    /// Overrides the CPU cost model.
    pub fn with_cpu_model(mut self, model: CpuCostModel) -> Self {
        self.cpu_model = model;
        self
    }

    /// Overrides the CPU throughput scale.
    pub fn with_cpu_time_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.cpu_time_scale = scale;
        self
    }

    /// Sorts `values`, reporting simulated time on this engine.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn sort(&self, values: &[f32]) -> SortReport {
        assert!(!values.is_empty(), "cannot sort an empty input");
        match self.engine {
            SortEngine::GpuPbsn => self.sort_gpu_pbsn(values),
            SortEngine::GpuBitonic => {
                self.sort_gpu_bitonic(values, crate::bitonic::BITONIC_SHADER_INSTRUCTIONS)
            }
            SortEngine::GpuBitonicKipfer => {
                self.sort_gpu_bitonic(values, crate::bitonic::KIPFER_SHADER_INSTRUCTIONS)
            }
            SortEngine::CpuQuicksort
            | SortEngine::CpuQsort
            | SortEngine::CpuRadix
            | SortEngine::CpuMergeSort => self.sort_cpu(values),
        }
    }

    fn sort_gpu_pbsn(&self, values: &[f32]) -> SortReport {
        let mut dev = Device::new(self.gpu_model.clone());
        let mut machine = Machine::new(self.cpu_model.clone());
        let sorted = gpu_sort_rgba(&mut dev, &mut machine, values);
        let gs = dev.stats().clone();
        let cpu_time = machine.time();
        SortReport {
            sorted,
            total_time: gs.total_time() + cpu_time,
            gpu_time: gs.gpu_only_time(),
            transfer_time: gs.transfer_time,
            cpu_time,
            gpu_stats: Some(gs),
            cpu_stats: Some(*machine.stats()),
        }
    }

    fn sort_gpu_bitonic(&self, values: &[f32], instructions: u32) -> SortReport {
        let mut dev = Device::new(self.gpu_model.clone());
        let padded = pad_pow2(values);
        let mut sorted = bitonic_sort_surface_with(&mut dev, &padded, instructions);
        strip_padding(&mut sorted);
        let gs = dev.stats().clone();
        SortReport {
            sorted,
            total_time: gs.total_time(),
            gpu_time: gs.gpu_only_time(),
            transfer_time: gs.transfer_time,
            cpu_time: SimTime::ZERO,
            gpu_stats: Some(gs),
            cpu_stats: None,
        }
    }

    fn sort_cpu(&self, values: &[f32]) -> SortReport {
        let mut machine = Machine::new(self.cpu_model.clone());
        let mut sorted = values.to_vec();
        const BASE: u64 = 0x100_0000;
        const SCRATCH: u64 = 0x4000_0000;
        match self.engine {
            SortEngine::CpuRadix => radix_sort(&mut sorted, &mut machine, BASE, SCRATCH),
            SortEngine::CpuMergeSort => merge_sort(&mut sorted, &mut machine, BASE, SCRATCH),
            _ => quicksort(&mut sorted, &mut machine, BASE),
        }
        let cpu_time = machine.time() * self.cpu_time_scale;
        SortReport {
            sorted,
            total_time: cpu_time,
            gpu_time: SimTime::ZERO,
            transfer_time: SimTime::ZERO,
            cpu_time,
            gpu_stats: None,
            cpu_stats: Some(*machine.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1000.0)).collect()
    }

    #[test]
    fn all_engines_agree_functionally() {
        let values = random_vec(777, 42);
        let mut expect = values.clone();
        expect.sort_by(f32::total_cmp);
        for engine in SortEngine::ALL {
            let report = Sorter::new(engine).sort(&values);
            assert_eq!(report.sorted, expect, "{engine:?}");
            assert!(
                report.total_time.as_secs() > 0.0,
                "{engine:?} must cost something"
            );
        }
    }

    #[test]
    fn gpu_report_splits_transfer_from_compute() {
        let report = Sorter::new(SortEngine::GpuPbsn).sort(&random_vec(4096, 1));
        assert!(report.transfer_time.as_secs() > 0.0);
        assert!(
            report.gpu_time > report.transfer_time,
            "sorting must dominate transfer"
        );
        assert!(report.cpu_time.as_secs() > 0.0, "merge runs on the CPU");
    }

    #[test]
    fn cpu_engines_have_no_gpu_component() {
        let report = Sorter::new(SortEngine::CpuQuicksort).sort(&random_vec(1000, 2));
        assert!(report.gpu_time.is_zero());
        assert!(report.transfer_time.is_zero());
        assert!(report.gpu_stats.is_none());
    }

    #[test]
    fn qsort_slower_than_intel_quicksort() {
        let values = random_vec(30_000, 3);
        let q = Sorter::new(SortEngine::CpuQsort).sort(&values);
        let i = Sorter::new(SortEngine::CpuQuicksort).sort(&values);
        assert!(
            q.total_time > i.total_time,
            "qsort {} must be slower than Intel quicksort {}",
            q.total_time,
            i.total_time
        );
    }

    #[test]
    fn pbsn_beats_bitonic_on_gpu() {
        let values = random_vec(16_384, 4);
        let p = Sorter::new(SortEngine::GpuPbsn).sort(&values);
        let b = Sorter::new(SortEngine::GpuBitonic).sort(&values);
        assert!(
            b.total_time.as_secs() > 3.0 * p.total_time.as_secs(),
            "bitonic {} vs pbsn {}",
            b.total_time,
            p.total_time
        );
    }

    #[test]
    fn single_element_input() {
        for engine in SortEngine::EXTENDED {
            let report = Sorter::new(engine).sort(&[5.0]);
            assert_eq!(report.sorted, vec![5.0], "{engine:?}");
        }
    }

    #[test]
    fn extended_engines_agree_functionally() {
        let values = random_vec(2000, 11);
        let mut expect = values.clone();
        expect.sort_by(f32::total_cmp);
        for engine in SortEngine::EXTENDED {
            let report = Sorter::new(engine).sort(&values);
            assert_eq!(report.sorted, expect, "{engine:?}");
        }
    }

    #[test]
    fn kipfer_between_pbsn_and_purcell() {
        // The improved shader (20 instructions) lands between the paper's
        // blend sorter and the 53-instruction Purcell baseline.
        let values = random_vec(32_768, 12);
        let pbsn = Sorter::new(SortEngine::GpuPbsn).sort(&values).total_time;
        let kipfer = Sorter::new(SortEngine::GpuBitonicKipfer)
            .sort(&values)
            .total_time;
        let purcell = Sorter::new(SortEngine::GpuBitonic).sort(&values).total_time;
        assert!(pbsn < kipfer, "pbsn {pbsn} < kipfer {kipfer}");
        assert!(kipfer < purcell, "kipfer {kipfer} < purcell {purcell}");
    }

    #[test]
    fn radix_avoids_branch_stalls() {
        let values = random_vec(50_000, 13);
        let radix = Sorter::new(SortEngine::CpuRadix).sort(&values);
        assert_eq!(radix.cpu_stats.expect("cpu engine").mispredicts, 0);
    }
}
