//! The shard-parallel differential verifier.
//!
//! [`verify_family`](crate::verify_family) certifies the *unsharded*
//! pipeline; this module fans the same adversarial stream across shard
//! counts and certifies the shard-merged answers. Three properties are
//! pinned per family:
//!
//! 1. **k = 1 is the identity.** One shard must produce answers
//!    byte-identical to the unsharded [`replay`] pipeline — sharding is a
//!    pure refactor until a second shard exists.
//! 2. **The engine is the pipeline.** [`StreamEngine::with_shards`]
//!    answers are fingerprint-compared against summaries run directly on
//!    [`ShardedPipeline`]s with the same hash routing — the DSMS layer may
//!    not change a single answer byte, and the direct summaries expose the
//!    surfaced bounds (`tracked_eps`, `undercount_bound`) the audits need.
//! 3. **Merged answers keep their ε contracts.** Every shard count's
//!    merged answers are audited against the per-query bounds: rank error
//!    within `ε + 2/N`, undercounts within the summary's own surfaced
//!    bound and the analytic `⌈εN⌉ + k − 1`, zero false negatives, space
//!    within `k ×` one summary's envelope.
//!
//! Like the unsharded differ, frequency-class contracts are audited on the
//! [`StreamSpec::integer_ids`] projection; the engines here share one
//! pushed stream, so quantile answers are audited over the same ids (a
//! quantile contract holds on any input).

use gsm_core::{replay, BitPrefixHierarchy, Engine, HhhEntry, ShardedPipeline};
use gsm_dsms::StreamEngine;
use gsm_sketch::exact::ExactStats;
use gsm_sketch::{ExpHistogram, HhhSummary, LossyCounting};

use crate::audit::{
    audit_sharded_frequency, audit_sharded_hhh, audit_sharded_quantile, AuditReport,
};
use crate::diff::{probe_values, EngineRun, Fnv, VerifyConfig};
use crate::gen::StreamSpec;

/// The verdict for one shard count within a [`ShardedFamilyOutcome`].
#[derive(Clone, Debug, serde::Serialize)]
pub struct ShardRun {
    /// Shard count this run fanned across.
    pub shards: usize,
    /// Per-engine fingerprints of the [`StreamEngine`] answers.
    pub engines: Vec<EngineRun>,
    /// Whether every engine produced byte-identical merged answers.
    pub cross_backend_agree: bool,
    /// Whether the engine's answers match the direct
    /// [`ShardedPipeline`]-level summaries byte for byte.
    pub engine_matches_pipeline: bool,
    /// Audits of the merged answers, one per registered query kind.
    pub reports: Vec<AuditReport>,
}

impl ShardRun {
    /// Whether this shard count agreed everywhere and held every bound.
    pub fn passed(&self) -> bool {
        self.cross_backend_agree
            && self.engine_matches_pipeline
            && self.reports.iter().all(AuditReport::passed)
    }
}

/// The sharded verdict for one adversarial stream: one [`ShardRun`] per
/// audited shard count, plus the unsharded baseline identity.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ShardedFamilyOutcome {
    /// Generator family name.
    pub family: String,
    /// Generator seed.
    pub seed: u64,
    /// Stream length (of the audited id projection).
    pub n: u64,
    /// Shared pipeline window the engines sealed to.
    pub window: u64,
    /// Fingerprint of the unsharded [`replay`] baseline answers.
    pub baseline_fingerprint: u64,
    /// Whether the k = 1 run reproduced the baseline byte for byte
    /// (`None` when 1 was not among the audited shard counts).
    pub k1_matches_baseline: Option<bool>,
    /// One verdict per audited shard count.
    pub runs: Vec<ShardRun>,
}

impl ShardedFamilyOutcome {
    /// Whether every shard count passed and k = 1 (if run) matched the
    /// unsharded baseline.
    pub fn passed(&self) -> bool {
        self.k1_matches_baseline != Some(false) && self.runs.iter().all(ShardRun::passed)
    }

    /// Human-readable description of every failure in this outcome.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.k1_matches_baseline == Some(false) {
            out.push(format!(
                "{}: k=1 diverged from the unsharded baseline {:#x}",
                self.family, self.baseline_fingerprint
            ));
        }
        for run in &self.runs {
            if !run.cross_backend_agree {
                out.push(format!(
                    "{} k={}: engines disagree: {:?}",
                    self.family,
                    run.shards,
                    run.engines
                        .iter()
                        .map(|e| (e.engine.as_str(), e.fingerprint))
                        .collect::<Vec<_>>()
                ));
            }
            if !run.engine_matches_pipeline {
                out.push(format!(
                    "{} k={}: StreamEngine diverged from the direct sharded pipeline",
                    self.family, run.shards
                ));
            }
            for r in &run.reports {
                for c in r.violations() {
                    out.push(format!(
                        "{} k={}/{}: {} observed {} > bound {}",
                        self.family, run.shards, r.estimator, c.name, c.observed, c.bound
                    ));
                }
            }
        }
        out
    }
}

/// The three merged answer sets one engine produced for one shard count.
struct MergedAnswers {
    quantiles: Vec<(f64, f32)>,
    hh: Vec<(f32, u64)>,
    hhh: Vec<HhhEntry>,
}

impl MergedAnswers {
    fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for &(phi, v) in &self.quantiles {
            h.u64(phi.to_bits());
            h.f32(v);
        }
        for &(v, c) in &self.hh {
            h.f32(v);
            h.u64(c);
        }
        for e in &self.hhh {
            h.u64(e.level as u64);
            h.f32(e.prefix);
            h.u64(e.discounted_count);
            h.u64(e.raw_count);
        }
        h.0
    }
}

/// Shared per-family inputs, precomputed once.
struct Ctx<'a> {
    cfg: &'a VerifyConfig,
    ids: &'a [f32],
    probes: &'a [f32],
    hierarchy: &'a BitPrefixHierarchy,
    /// The shared window every engine seals to (the max of the query
    /// minimums, mirroring [`StreamEngine::seal`]'s choice).
    window: usize,
    /// Stream-length hint covering the whole stream.
    n_hint: u64,
}

impl Ctx<'_> {
    fn quantile_sketch(&self) -> ExpHistogram {
        ExpHistogram::new(self.cfg.quantile_eps, self.window, self.n_hint)
    }

    fn frequency_sketch(&self) -> LossyCounting {
        LossyCounting::with_window(self.cfg.frequency_eps, self.window)
    }

    fn hhh_sketch(&self) -> HhhSummary {
        HhhSummary::with_window(self.cfg.frequency_eps, self.window, self.hierarchy.clone())
    }
}

/// Runs the full DSMS path at shard count `k` and collects its answers.
fn run_stream_engine(engine: Engine, ctx: &Ctx, k: usize) -> MergedAnswers {
    let mut eng = StreamEngine::new(engine)
        .with_n_hint(ctx.ids.len() as u64)
        .with_shards(k);
    let q = eng.register_quantile(ctx.cfg.quantile_eps);
    let f = eng.register_frequency(ctx.cfg.frequency_eps);
    let h = eng.register_hhh(ctx.cfg.frequency_eps, ctx.hierarchy.clone());
    eng.push_all(ctx.ids.iter().copied());
    assert_eq!(
        eng.window(),
        ctx.window,
        "the engine's sealed window must match the audit's assumption"
    );
    MergedAnswers {
        quantiles: ctx
            .cfg
            .phis
            .iter()
            .map(|&phi| (phi, eng.quantile(q, phi)))
            .collect(),
        hh: eng.heavy_hitters(f, ctx.cfg.support),
        hhh: eng.hhh(h, ctx.cfg.support),
    }
}

/// One engine's direct pipeline-level run: the same sharded answers plus
/// the surfaced bounds and entry counts the audits consume (which the DSMS
/// facade intentionally hides).
struct DirectRun {
    answers: MergedAnswers,
    estimates: Vec<(f32, u64)>,
    q_surfaced_eps: f64,
    q_entries: usize,
    f_bound: u64,
    f_entries: usize,
    h_bound: u64,
    h_entries: usize,
}

fn run_direct(engine: Engine, ctx: &Ctx, k: usize) -> DirectRun {
    let mut qp = ShardedPipeline::new(engine, ctx.window, k, |_| ctx.quantile_sketch());
    for &v in ctx.ids {
        qp.push(v);
    }
    let mq = qp.merged_sink();

    let mut fp = ShardedPipeline::new(engine, ctx.window, k, |_| ctx.frequency_sketch());
    for &v in ctx.ids {
        fp.push(v);
    }
    let mf = fp.merged_sink();

    let mut hp = ShardedPipeline::new(engine, ctx.window, k, |_| ctx.hhh_sketch());
    for &v in ctx.ids {
        hp.push(v);
    }
    let mh = hp.merged_sink();

    DirectRun {
        answers: MergedAnswers {
            quantiles: ctx
                .cfg
                .phis
                .iter()
                .map(|&phi| (phi, mq.query(phi)))
                .collect(),
            hh: mf.heavy_hitters(ctx.cfg.support),
            hhh: mh.query(ctx.cfg.support),
        },
        estimates: ctx.probes.iter().map(|&v| (v, mf.estimate(v))).collect(),
        q_surfaced_eps: mq.tracked_eps(),
        q_entries: mq.entry_count(),
        f_bound: mf.undercount_bound(),
        f_entries: mf.entry_count(),
        h_bound: mh.undercount_bound(),
        h_entries: mh.entry_count(),
    }
}

/// Fans one adversarial stream across every configured engine × every
/// shard count in `shard_counts`, cross-checks the merged answers, pins
/// k = 1 to the unsharded baseline, and audits every sharded ε bound.
pub fn verify_family_sharded(
    spec: &StreamSpec,
    cfg: &VerifyConfig,
    shard_counts: &[usize],
) -> ShardedFamilyOutcome {
    assert!(!cfg.engines.is_empty(), "need at least one engine");
    assert!(!shard_counts.is_empty(), "need at least one shard count");
    let ids = spec.integer_ids();
    let oracle = ExactStats::new(&ids);
    let probes = probe_values(&oracle, 16);
    let hierarchy = BitPrefixHierarchy::new(vec![4, 8]);
    // Mirror StreamEngine::seal: quantile queries demand ≥ 1024, the
    // counting queries ≥ ⌈1/ε⌉.
    let window = 1024usize.max((1.0 / cfg.frequency_eps).ceil() as usize);
    let ctx = Ctx {
        cfg,
        ids: &ids,
        probes: &probes,
        hierarchy: &hierarchy,
        window,
        n_hint: (ids.len() as u64).max(window as u64),
    };

    // The unsharded identity baseline: the plain replay pipeline on the
    // first engine, same window and sketch configurations.
    let base_q = replay(cfg.engines[0], window, &ids, ctx.quantile_sketch());
    let base_f = replay(cfg.engines[0], window, &ids, ctx.frequency_sketch());
    let base_h = replay(cfg.engines[0], window, &ids, ctx.hhh_sketch());
    let baseline_fingerprint = MergedAnswers {
        quantiles: cfg
            .phis
            .iter()
            .map(|&phi| (phi, base_q.query(phi)))
            .collect(),
        hh: base_f.heavy_hitters(cfg.support),
        hhh: base_h.query(cfg.support),
    }
    .fingerprint();

    let mut k1_matches_baseline = None;
    let runs = shard_counts
        .iter()
        .map(|&k| {
            let answers: Vec<(Engine, MergedAnswers)> = cfg
                .engines
                .iter()
                .map(|&e| (e, run_stream_engine(e, &ctx, k)))
                .collect();
            let engines: Vec<EngineRun> = answers
                .iter()
                .map(|(e, a)| EngineRun {
                    engine: e.label().to_string(),
                    fingerprint: a.fingerprint(),
                })
                .collect();
            let cross_backend_agree = engines
                .windows(2)
                .all(|w| w[0].fingerprint == w[1].fingerprint);

            let direct = run_direct(cfg.engines[0], &ctx, k);
            let engine_matches_pipeline = engines[0].fingerprint == direct.answers.fingerprint();
            if k == 1 {
                k1_matches_baseline = Some(engines[0].fingerprint == baseline_fingerprint);
            }

            let reports = vec![
                audit_sharded_quantile(
                    &ids,
                    cfg.quantile_eps,
                    window,
                    k,
                    direct.q_surfaced_eps,
                    &direct.answers.quantiles,
                    direct.q_entries,
                ),
                audit_sharded_frequency(
                    &ids,
                    cfg.frequency_eps,
                    cfg.support,
                    k,
                    direct.f_bound,
                    &direct.estimates,
                    &direct.answers.hh,
                    direct.f_entries,
                ),
                audit_sharded_hhh(
                    &ids,
                    cfg.frequency_eps,
                    cfg.support,
                    &hierarchy,
                    k,
                    direct.h_bound,
                    &direct.answers.hhh,
                    direct.h_entries,
                ),
            ];
            ShardRun {
                shards: k,
                engines,
                cross_backend_agree,
                engine_matches_pipeline,
                reports,
            }
        })
        .collect();

    ShardedFamilyOutcome {
        family: spec.family.name().to_string(),
        seed: spec.seed,
        n: ids.len() as u64,
        window: window as u64,
        baseline_fingerprint,
        k1_matches_baseline,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn uniform_family_passes_across_shard_counts() {
        let spec = StreamSpec {
            family: Family::Uniform,
            seed: 7,
            n: 4096,
            window: 1024,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let outcome = verify_family_sharded(&spec, &cfg, &[1, 2, 4]);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());
        assert_eq!(outcome.k1_matches_baseline, Some(true));
        assert_eq!(outcome.runs.len(), 3);
        for run in &outcome.runs {
            assert!(run.engine_matches_pipeline, "k={}", run.shards);
            assert_eq!(run.reports.len(), 3);
        }
    }

    #[test]
    fn heavy_duplicate_agrees_across_engines_when_sharded() {
        let spec = StreamSpec {
            family: Family::HeavyDuplicate,
            seed: 11,
            n: 4096,
            window: 1024,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host, Engine::GpuSim],
            ..VerifyConfig::default()
        };
        let outcome = verify_family_sharded(&spec, &cfg, &[2]);
        assert!(outcome.passed(), "failures: {:?}", outcome.failures());
        assert!(outcome.runs[0].cross_backend_agree);
    }

    #[test]
    fn divergence_is_described() {
        let spec = StreamSpec {
            family: Family::ZipfSkew,
            seed: 3,
            n: 2048,
            window: 512,
        };
        let cfg = VerifyConfig {
            engines: vec![Engine::Host],
            ..VerifyConfig::default()
        };
        let mut outcome = verify_family_sharded(&spec, &cfg, &[1, 2]);
        assert!(outcome.failures().is_empty(), "{:?}", outcome.failures());
        outcome.k1_matches_baseline = Some(false);
        outcome.runs[1].engine_matches_pipeline = false;
        assert!(!outcome.passed());
        assert_eq!(outcome.failures().len(), 2);
    }
}
