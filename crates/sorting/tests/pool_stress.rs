//! Stress and ordering tests for the lane worker pool.
//!
//! The pool's contract (see `gsm_sort::pool`) is exercised here under
//! contention: many concurrent submitters, panicking tasks mixed into the
//! queue, tickets dropped mid-flight, and pools torn down with work still
//! queued. Results must stay correct and scheduling-independent — the same
//! batches sort to the same bytes whether the suite runs single-threaded
//! (`--test-threads=1`) or fully parallel, on one worker or four.

use std::sync::Arc;
use std::time::Duration;

use gsm_obs::Recorder;
use gsm_sort::pool::{PoolError, Task, WorkerPool};

/// Deterministic pseudo-random lane: a Weyl sequence over a prime modulus.
fn lane(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((seed.wrapping_add(i as u64)).wrapping_mul(2654435761) % 99_991) as f32)
        .collect()
}

fn sorted(v: &[f32]) -> Vec<f32> {
    let mut s = v.to_vec();
    s.sort_by(f32::total_cmp);
    s
}

#[test]
fn concurrent_submitters_each_get_their_own_results() {
    let rec = Recorder::enabled();
    let pool = Arc::new(WorkerPool::with_recorder(4, rec.clone()));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..20u64 {
                    let seed = t * 1000 + round;
                    let lanes: Vec<Vec<f32>> = (0..4)
                        .map(|k| lane(97 + (round as usize % 7), seed + k))
                        .collect();
                    let expect: Vec<Vec<f32>> = lanes.iter().map(|l| sorted(l)).collect();
                    let done = pool
                        .sort_lanes(lanes)
                        .wait_timeout(Duration::from_secs(60))
                        .expect("batch completes");
                    assert_eq!(done.lanes, expect, "submitter {t} round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread");
    }
    // Observability under contention: 8 submitters x 20 rounds x 4 lanes.
    let depth = rec.gauge("pool_queue_depth").expect("depth gauge");
    assert_eq!(depth.current, 0, "all jobs drained");
    assert!(
        (1..=640).contains(&depth.highwater),
        "high-water {} must reflect real backlog",
        depth.highwater
    );
    let service = rec.histogram("pool_service").expect("service histogram");
    assert_eq!(service.count, 640, "one service record per lane job");
    assert_eq!(
        rec.histogram("pool_wait").expect("wait histogram").count,
        160
    );
    let per_worker: u64 = (0..4)
        .map(|w| rec.counter_labeled("pool_worker_tasks", ("worker", &w.to_string())))
        .sum();
    assert_eq!(per_worker, 640, "every job attributed to some worker");
    assert!(rec.counter("pool_radix_passes") > 0);
    assert_eq!(rec.counter("pool_panics"), 0);
}

#[test]
fn panics_surface_per_batch_without_poisoning_neighbors() {
    let rec = Recorder::enabled();
    let pool = WorkerPool::with_recorder(2, rec.clone());
    // Interleave poisoned and healthy batches so panicking tasks and good
    // tasks share workers.
    let mut healthy = Vec::new();
    let mut poisoned = Vec::new();
    for round in 0..12u64 {
        if round % 3 == 0 {
            let tasks: Vec<Task> = vec![
                Box::new(move || panic!("boom {round}")),
                Box::new(move || {
                    let mut l = lane(50, round);
                    l.sort_by(f32::total_cmp);
                    l
                }),
            ];
            poisoned.push((round, pool.submit(tasks)));
        } else {
            let data = lane(200, round);
            healthy.push((sorted(&data), pool.sort_lanes(vec![data])));
        }
    }
    for (round, ticket) in poisoned {
        let err = ticket.wait_timeout(Duration::from_secs(60)).unwrap_err();
        assert_eq!(err, PoolError::WorkerPanic(format!("boom {round}")));
    }
    for (expect, ticket) in healthy {
        let done = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("healthy batch");
        assert_eq!(done.lanes, vec![expect]);
    }
    // Rounds 0, 3, 6, 9 each queued exactly one panicking task.
    assert_eq!(rec.counter("pool_panics"), 4);
    assert_eq!(
        rec.gauge("pool_queue_depth").expect("depth gauge").current,
        0
    );
}

#[test]
fn dropped_tickets_do_not_disturb_later_batches() {
    let pool = WorkerPool::new(1);
    // Abandon a backlog of tickets on a single worker; their replies go
    // nowhere, which must not block or corrupt the batches we do keep.
    for round in 0..10u64 {
        drop(pool.sort_lanes(vec![lane(500, round)]));
    }
    let keep = lane(300, 999);
    let done = pool
        .sort_lanes(vec![keep.clone()])
        .wait_timeout(Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.lanes, vec![sorted(&keep)]);
}

#[test]
fn teardown_with_queued_work_completes_or_disconnects_cleanly() {
    // A single worker with a deep queue: drop the pool immediately after
    // submitting. Workers drain the queue before exiting, so every ticket
    // still resolves; none may hang.
    let pool = WorkerPool::new(1);
    let tickets: Vec<_> = (0..6u64)
        .map(|round| {
            let data = lane(400, round);
            (sorted(&data), pool.sort_lanes(vec![data]))
        })
        .collect();
    drop(pool);
    for (expect, ticket) in tickets {
        let done = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("drained before exit");
        assert_eq!(done.lanes, vec![expect]);
    }
}

#[test]
fn results_are_identical_across_pool_widths_and_runs() {
    // The byte-for-byte determinism claim: worker count and scheduling
    // affect only timing, never bytes. Run the same batch set through a
    // 1-wide and a 4-wide pool, twice each, and compare everything.
    let batches: Vec<Vec<Vec<f32>>> = (0..6u64)
        .map(|b| (0..4).map(|k| lane(128 + b as usize, b * 10 + k)).collect())
        .collect();
    let run = |threads: usize| -> Vec<Vec<Vec<f32>>> {
        let pool = WorkerPool::new(threads);
        let tickets: Vec<_> = batches.iter().map(|b| pool.sort_lanes(b.clone())).collect();
        tickets
            .into_iter()
            .map(|t| {
                t.wait_timeout(Duration::from_secs(60))
                    .expect("batch completes")
                    .lanes
            })
            .collect()
    };
    let narrow = run(1);
    let wide = run(4);
    let wide_again = run(4);
    let narrow_bits: Vec<Vec<Vec<u32>>> = narrow
        .iter()
        .map(|b| {
            b.iter()
                .map(|l| l.iter().map(|v| v.to_bits()).collect())
                .collect()
        })
        .collect();
    let wide_bits: Vec<Vec<Vec<u32>>> = wide
        .iter()
        .map(|b| {
            b.iter()
                .map(|l| l.iter().map(|v| v.to_bits()).collect())
                .collect()
        })
        .collect();
    assert_eq!(narrow_bits, wide_bits);
    assert_eq!(wide, wide_again);
}
