//! The verification gate, end to end through the facade: adversarial
//! streams × every engine × every estimator, audited against exact
//! oracles — plus certification of the *degraded* bounds under load
//! shedding via the DSMS window tap.

use std::sync::{Arc, Mutex};

use gsm::core::{replay, Engine};
use gsm::dsms::{LoadShedder, StreamEngine};
use gsm::sketch::exact::ExactStats;
use gsm::sketch::LossyCounting;
use gsm::verify::{
    verify_family, verify_family_batched, verify_family_served, verify_family_sharded, Family,
    StreamSpec, VerifyConfig,
};

/// Every adversarial family passes the full differential audit on every
/// engine at smoke size — the same configuration CI's `verify` job runs.
#[test]
fn all_families_pass_on_all_engines() {
    let cfg = VerifyConfig::default();
    for family in Family::ALL {
        let spec = StreamSpec {
            family,
            seed: 42,
            n: 2048,
            window: 512,
        };
        let outcome = verify_family(&spec, &cfg);
        assert!(
            outcome.passed(),
            "{}: {:?}",
            family.name(),
            outcome.failures()
        );
        assert_eq!(outcome.engines.len(), Engine::ALL.len());
        assert_eq!(outcome.reports.len(), 5, "five estimators audited");
    }
}

/// The sharded gate: every adversarial family — including the totalOrder
/// edge values and the window ±1 off-by-one streams — passes the merged-ε
/// audits at every shard count in {1, 2, 4} on every engine, k = 1
/// reproduces the unsharded baseline byte for byte, and the
/// `StreamEngine::with_shards` path never diverges from the raw sharded
/// pipeline.
#[test]
fn all_families_pass_sharded_on_all_engines() {
    let cfg = VerifyConfig::default();
    for family in Family::ALL {
        let spec = StreamSpec {
            family,
            seed: 42,
            n: 2048,
            window: 512,
        };
        let outcome = verify_family_sharded(&spec, &cfg, &[1, 2, 4]);
        assert!(
            outcome.passed(),
            "{}: {:?}",
            family.name(),
            outcome.failures()
        );
        assert_eq!(outcome.k1_matches_baseline, Some(true), "{}", family.name());
        for run in &outcome.runs {
            assert_eq!(run.engines.len(), Engine::ALL.len());
            assert_eq!(run.reports.len(), 3, "three merged estimators audited");
        }
    }
}

/// The batched-ingest gate: for every adversarial family, ingesting
/// through `StreamEngine::push_batch` at boundary-adversarial batch
/// lengths {1, 7, window, window+1, 3·window} produces answers and
/// checkpoint envelopes byte-identical to the scalar `push` loop, on
/// every engine at shard counts {1, 2, 4}.
#[test]
fn all_families_batch_ingest_byte_identically() {
    let cfg = VerifyConfig::default();
    for family in Family::ALL {
        let spec = StreamSpec {
            family,
            seed: 42,
            n: 2048,
            window: 512,
        };
        let outcome = verify_family_batched(&spec, &cfg, &[1, 2, 4]);
        assert!(
            outcome.passed(),
            "{}: {:?}",
            family.name(),
            outcome.failures()
        );
        // engines × shard counts × five batch lengths.
        assert_eq!(outcome.runs.len(), Engine::ALL.len() * 3 * 5);
    }
}

/// The serving gate: for every adversarial family, answers served through
/// the `gsm-serve` frontend (snapshot registry → admission queue → worker
/// pool) are byte-identical to direct engine queries on every engine at
/// shard counts {1, 3}, and every submitted request got exactly one
/// structured reply.
#[test]
fn all_families_serve_byte_identical_answers() {
    for family in Family::ALL {
        let spec = StreamSpec {
            family,
            seed: 42,
            n: 2048,
            window: 512,
        };
        let outcome = verify_family_served(&spec, &Engine::ALL);
        assert!(
            outcome.passed(),
            "{}: {:?}",
            family.name(),
            outcome.failures()
        );
        assert_eq!(outcome.runs.len(), Engine::ALL.len() * 2);
    }
}

/// The replay entry point is deterministic: same engine, same stream, same
/// summary — byte for byte, across repeated runs.
#[test]
fn replay_is_deterministic_per_engine() {
    let spec = StreamSpec {
        family: Family::ZipfSkew,
        seed: 7,
        n: 4096,
        window: 512,
    };
    let ids = spec.integer_ids();
    for engine in Engine::ALL {
        let a = replay(engine, 512, &ids, LossyCounting::with_window(0.01, 512));
        let b = replay(engine, 512, &ids, LossyCounting::with_window(0.01, 512));
        let ea: Vec<(f32, u64)> = a.entries().collect();
        let eb: Vec<(f32, u64)> = b.entries().collect();
        assert_eq!(ea, eb, "{engine:?} replay must be bit-stable");
    }
}

/// Load shedding degrades the guarantee from "ε of the stream" to "ε of
/// the admitted sub-stream". The window tap collects exactly what the
/// engine admitted, and the answers must satisfy the paper's bounds
/// against an oracle over that sub-stream — the certified form of the
/// degraded contract.
#[test]
fn shedding_bounds_certified_against_admitted_substream() {
    let spec = StreamSpec {
        family: Family::HeavyDuplicate,
        seed: 11,
        n: 40_000,
        window: 1024,
    };
    let data = spec.integer_ids();
    let eps = 0.005;
    let support = 0.05;

    let admitted: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&admitted);
    let mut eng = StreamEngine::new(Engine::Host)
        .with_n_hint(data.len() as u64)
        .with_window_tap(Box::new(move |w: &[f32]| {
            sink.lock().expect("tap lock").extend_from_slice(w);
        }));
    let f = eng.register_frequency(eps);
    let q = eng.register_quantile(0.02);

    // Admit 40% of arrivals through the uniform decimator.
    let mut shedder = LoadShedder::new(0.4);
    for &v in &data {
        if shedder.admit() {
            eng.push(v);
        }
    }
    let hot = eng.heavy_hitters(f, support);
    let med = eng.quantile(q, 0.5);

    let admitted = admitted.lock().expect("tap lock").clone();
    assert_eq!(
        admitted.len() as u64,
        shedder.admitted(),
        "the tap must see exactly the admitted sub-stream"
    );
    assert_eq!(eng.count(), shedder.admitted());

    // Certify the degraded contracts against the admitted oracle.
    let oracle = ExactStats::new(&admitted);
    let n = admitted.len() as f64;
    let undercount_bound = (eps * n).ceil() as u64;
    for &(v, est) in &hot {
        let truth = oracle.frequency(v);
        assert!(est <= truth, "overestimate on admitted stream: {v}");
        assert!(
            truth - est <= undercount_bound,
            "undercount {} > eps*n' for {v}",
            truth - est
        );
    }
    // No false negatives above support, relative to the admitted stream.
    let threshold = (support * n).ceil() as u64;
    let answered: Vec<f32> = hot.iter().map(|&(v, _)| v).collect();
    for (v, _) in oracle.heavy_hitters(threshold) {
        assert!(
            answered.iter().any(|&a| a.to_bits() == v.to_bits()),
            "missing admitted-stream heavy hitter {v}"
        );
    }
    // Quantile rank error within eps of the admitted population.
    let err = oracle.quantile_rank_error(0.5, med);
    assert!(err <= 0.02 + 2.0 / n, "median rank error {err}");
}

/// A deliberately broken answer set is caught by the auditor: the gate
/// actually fails on violations, it does not rubber-stamp.
#[test]
fn auditor_rejects_fabricated_answers() {
    let spec = StreamSpec {
        family: Family::Uniform,
        seed: 3,
        n: 2048,
        window: 512,
    };
    let ids = spec.integer_ids();
    let oracle = ExactStats::new(&ids);
    let hot = oracle.heavy_hitters(1);
    let &(v, truth) = hot.first().expect("non-empty stream");
    // Claim one more occurrence than the truth: must trip no_overestimate.
    let report = gsm::verify::audit_frequency(&ids, 0.01, 0.05, &[(v, truth + 1)], &[], 10);
    assert!(!report.passed());
    assert!(report
        .violations()
        .any(|c| c.name.contains("no_overestimate")));
}
