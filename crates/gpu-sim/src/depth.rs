//! Depth testing and occlusion queries — the *other* fixed-function
//! query path of 2004 GPUs.
//!
//! The paper's predecessor system (its reference \[20\], Govindaraju et al.,
//! "fast computation of database operations using graphics processors")
//! evaluated predicates, range queries, and k-th-largest selection by
//! storing attribute values in the **depth buffer**, rendering screen-sized
//! quads at a candidate depth with a comparison function, and reading the
//! number of passing fragments back through an **occlusion query**. The
//! paper builds on that machinery ("These algorithms … were applied to
//! perform multi-attribute comparisons, semi-linear queries, range queries
//! and kth largest numbers") — so the simulator models it: a per-pixel
//! depth plane, the standard comparison functions, and a pass-count query.

/// Depth comparison functions (GL names).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepthFunc {
    /// Fragment passes if `frag < stored`.
    Less,
    /// Fragment passes if `frag <= stored`.
    LessEqual,
    /// Fragment passes if `frag > stored`.
    Greater,
    /// Fragment passes if `frag >= stored`.
    GreaterEqual,
    /// Fragment passes if `frag == stored`.
    Equal,
    /// Fragment always passes.
    Always,
}

impl DepthFunc {
    /// Applies the comparison.
    #[inline]
    pub fn passes(self, frag: f32, stored: f32) -> bool {
        match self {
            DepthFunc::Less => frag < stored,
            DepthFunc::LessEqual => frag <= stored,
            DepthFunc::Greater => frag > stored,
            DepthFunc::GreaterEqual => frag >= stored,
            DepthFunc::Equal => frag == stored,
            DepthFunc::Always => true,
        }
    }
}

/// A single-channel depth plane.
#[derive(Clone, Debug)]
pub struct DepthBuffer {
    width: u32,
    height: u32,
    values: Vec<f32>,
}

impl DepthBuffer {
    /// Creates a depth buffer cleared to `clear`.
    pub fn new(width: u32, height: u32, clear: f32) -> Self {
        assert!(
            width > 0 && height > 0,
            "depth buffer dimensions must be non-zero"
        );
        DepthBuffer {
            width,
            height,
            values: vec![clear; width as usize * height as usize],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of depth texels.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false (dimensions are non-zero).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads the stored depth at `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.values[y as usize * self.width as usize + x as usize]
    }

    /// Writes the stored depth at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        self.values[y as usize * self.width as usize + x as usize] = v;
    }

    /// Writes depth at flat index `i`.
    #[inline]
    pub fn set_flat(&mut self, i: usize, v: f32) {
        self.values[i] = v;
    }

    /// Reads depth at flat index `i`.
    #[inline]
    pub fn get_flat(&self, i: usize) -> f32 {
        self.values[i]
    }

    /// The raw plane.
    pub fn values(&self) -> &[f32] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_functions() {
        assert!(DepthFunc::Less.passes(1.0, 2.0));
        assert!(!DepthFunc::Less.passes(2.0, 2.0));
        assert!(DepthFunc::LessEqual.passes(2.0, 2.0));
        assert!(DepthFunc::Greater.passes(3.0, 2.0));
        assert!(!DepthFunc::Greater.passes(2.0, 2.0));
        assert!(DepthFunc::GreaterEqual.passes(2.0, 2.0));
        assert!(DepthFunc::Equal.passes(2.0, 2.0));
        assert!(!DepthFunc::Equal.passes(2.1, 2.0));
        assert!(DepthFunc::Always.passes(-1.0, f32::INFINITY));
    }

    #[test]
    fn buffer_round_trip() {
        let mut d = DepthBuffer::new(4, 2, 0.5);
        assert_eq!(d.len(), 8);
        assert!(d.values().iter().all(|&v| v == 0.5));
        d.set(3, 1, 0.25);
        assert_eq!(d.get(3, 1), 0.25);
        d.set_flat(0, 0.75);
        assert_eq!(d.get_flat(0), 0.75);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let _ = DepthBuffer::new(0, 1, 0.0);
    }
}
