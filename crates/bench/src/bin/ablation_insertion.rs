//! **Ablation A4** — window-based vs single-element summary insertion
//! (paper §3.2: "The window-based algorithms usually perform better in
//! practice as fewer number of elements are inserted into the summary data
//! structure … However, window-based algorithms may have a slightly higher
//! memory requirement").
//!
//! Quantiles: the window-based exponential-histogram GK04 pipeline (GPU or
//! CPU sorted) vs classic per-element GK01. Frequencies: window-based lossy
//! counting vs per-element Misra–Gries. Per-element structures never sort,
//! so their cost is pure summary maintenance, priced with the same
//! per-operation model as the window-based merge/compress phases.
//!
//! ```text
//! cargo run --release -p gsm-bench --bin ablation_insertion [-- --n 2097152 --csv]
//! ```

use gsm_bench::{human_n, Args, Table};
use gsm_core::{Engine, FrequencyEstimator, QuantileEstimator};
use gsm_model::SimTime;
use gsm_sketch::exact::ExactStats;
use gsm_sketch::{GkSummary, MisraGries};
use gsm_stream::UniformGen;

/// Modeled cycles per Misra–Gries insert (hash probe + counter update).
const MG_INSERT_CYCLES: f64 = 12.0;
const CLOCK_HZ: f64 = 3.4e9;

fn main() {
    let args = Args::parse();
    let csv = args.flag("csv");
    let n: usize = args.get_num("n", 2 << 20);
    let eps = 0.001;

    let data: Vec<f32> = UniformGen::unit(31).take(n).collect();
    let oracle = ExactStats::new(&data);

    println!(
        "# Ablation A4: window-based vs single-element insertion ({} stream, eps = {eps})\n",
        human_n(n)
    );
    let mut table = Table::new([
        "estimator",
        "insertion",
        "sim time ms",
        "entries",
        "median rank err / est err",
    ]);

    // ---- Quantiles: window-based (GPU + CPU engines) ----------------------
    for engine in [Engine::GpuSim, Engine::CpuSim] {
        let mut est = QuantileEstimator::builder(eps)
            .engine(engine)
            .n_hint(n as u64)
            .build();
        est.push_all(data.iter().copied());
        est.flush();
        let err = oracle.quantile_rank_error(0.5, est.query(0.5));
        table.row([
            "quantile".into(),
            format!("window/{}", short(engine)),
            format!("{:.3}", est.total_time().as_millis()),
            est.entry_count().to_string(),
            format!("{err:.6}"),
        ]);
    }
    // Per-element GK01: no sorting anywhere, every element updates the
    // summary.
    let mut gk = GkSummary::new(eps);
    for &v in &data {
        gk.insert(v);
    }
    let gk_time = SimTime::from_secs(gk.ops().total() as f64 * 6.0 / CLOCK_HZ);
    let err = oracle.quantile_rank_error(0.5, gk.query(0.5));
    table.row([
        "quantile".into(),
        "per-element GK01".into(),
        format!("{:.3}", gk_time.as_millis()),
        gk.tuple_count().to_string(),
        format!("{err:.6}"),
    ]);

    // ---- Frequencies ------------------------------------------------------
    for engine in [Engine::GpuSim, Engine::CpuSim] {
        let mut est = FrequencyEstimator::builder(eps).engine(engine).build();
        est.push_all(data.iter().copied());
        est.flush();
        // Probe the f16 grid value nearest 0.5.
        let probe = gsm_stream::F16::from_f32(0.5).to_f32();
        let est_err = (est.estimate(probe) as i64 - oracle.frequency(probe) as i64).abs();
        table.row([
            "frequency".into(),
            format!("window/{}", short(engine)),
            format!("{:.3}", est.total_time().as_millis()),
            est.entry_count().to_string(),
            est_err.to_string(),
        ]);
    }
    let mut mg = MisraGries::new((1.0 / eps).ceil() as usize - 1);
    for &v in &data {
        mg.insert(v);
    }
    let mg_time = SimTime::from_secs(n as f64 * MG_INSERT_CYCLES / CLOCK_HZ);
    let probe = gsm_stream::F16::from_f32(0.5).to_f32();
    let mg_err = (mg.estimate(probe) as i64 - oracle.frequency(probe) as i64).abs();
    table.row([
        "frequency".into(),
        "per-element MG".into(),
        format!("{:.3}", mg_time.as_millis()),
        mg.counter_count().to_string(),
        mg_err.to_string(),
    ]);

    table.print(csv);
    println!(
        "\n# GK01 pays a sorted-array shift per element (O(|S|)): window-based insertion replaces"
    );
    println!(
        "# that with one offloadable sort plus one merge per window - several times faster here,"
    );
    println!(
        "# at a larger footprint (the trade paper 3.2 describes). Hash-based Misra-Gries is O(1)"
    );
    println!(
        "# per element and fastest on the CPU, but yields no per-window histogram (the building"
    );
    println!(
        "# block the hierarchical and sliding queries reuse) and cannot use the co-processor."
    );
}

fn short(e: Engine) -> &'static str {
    match e {
        Engine::GpuSim => "GPU",
        Engine::CpuSim => "CPU",
        Engine::Host => "host",
        Engine::ParallelHost => "par-host",
    }
}
