//! Arrival-rate modeling and load shedding (paper §1).
//!
//! When the offered arrival rate exceeds the engine's service rate, a DSMS
//! must drop elements or fall behind without bound. The shedder here is the
//! classic *uniform decimation* policy: keep a deterministic fraction of
//! arrivals, spread evenly. Uniform sampling is statistically gentle —
//! quantiles of the kept sub-stream are unbiased estimates of the stream's
//! quantiles, and frequencies scale by the keep fraction — and the
//! [`ShedReport`] carries the keep fraction so consumers can rescale.
//!
//! [`run_at_rate`] drives a [`StreamEngine`] from a virtual arrival clock:
//! elements arrive at `offered_rate`, service time is the engine's
//! *simulated* time, and a proportional controller adapts the keep fraction
//! chunk-by-chunk so the backlog stays bounded.

use crate::engine::StreamEngine;

/// A deterministic uniform decimator: admits `keep` of every 1.0 of
/// arrivals, spread evenly (error-diffusion, not bursty).
#[derive(Clone, Debug)]
pub struct LoadShedder {
    keep: f64,
    accumulator: f64,
    admitted: u64,
    dropped: u64,
}

impl LoadShedder {
    /// Creates a shedder keeping fraction `keep` of arrivals.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < keep ≤ 1`.
    pub fn new(keep: f64) -> Self {
        assert!(
            keep > 0.0 && keep <= 1.0,
            "keep fraction must be in (0, 1], got {keep}"
        );
        LoadShedder {
            keep,
            accumulator: 0.0,
            admitted: 0,
            dropped: 0,
        }
    }

    /// The current keep fraction.
    pub fn keep_fraction(&self) -> f64 {
        self.keep
    }

    /// Adjusts the keep fraction (clamped to `(0, 1]`).
    pub fn set_keep_fraction(&mut self, keep: f64) {
        self.keep = keep.clamp(1e-6, 1.0);
    }

    /// Decides one arrival: `true` = admit.
    #[inline]
    pub fn admit(&mut self) -> bool {
        self.accumulator += self.keep;
        if self.accumulator >= 1.0 {
            self.accumulator -= 1.0;
            self.admitted += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Arrivals admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Arrivals dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The outcome of a rate-driven run.
#[derive(Clone, Copy, Debug)]
pub struct ShedReport {
    /// Elements offered by the source.
    pub offered: u64,
    /// Elements admitted into the engine.
    pub processed: u64,
    /// Elements shed.
    pub shed: u64,
    /// The offered arrival rate (elements / second).
    pub offered_rate: f64,
    /// The engine's measured service rate on admitted elements
    /// (elements / simulated second).
    pub service_rate: f64,
    /// Final backlog: service clock minus arrival clock, in seconds
    /// (positive = the engine finished after the last arrival).
    pub lag_seconds: f64,
    /// The final adapted keep fraction.
    pub keep_fraction: f64,
}

impl ShedReport {
    /// Fraction of arrivals shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Drives `engine` with `values` arriving at `offered_rate` elements per
/// second, shedding adaptively to keep the backlog bounded.
///
/// The controller re-estimates the sustainable keep fraction once per
/// chunk (8 shared windows) from the engine's simulated service time; when
/// the engine is faster than the source, everything is admitted.
pub fn run_at_rate(
    engine: &mut StreamEngine,
    values: impl IntoIterator<Item = f32>,
    offered_rate: f64,
) -> ShedReport {
    assert!(offered_rate > 0.0, "offered rate must be positive");
    engine.seal();
    let obs = engine.recorder().clone();
    let chunk = engine.window() * 8;
    let mut shedder = LoadShedder::new(1.0);
    let mut offered = 0u64;
    let mut arrival_clock = 0.0f64;

    let mut buffered: Vec<f32> = Vec::with_capacity(chunk);
    let mut admitted: Vec<f32> = Vec::with_capacity(chunk);
    let mut values = values.into_iter();
    loop {
        buffered.clear();
        for v in values.by_ref() {
            buffered.push(v);
            if buffered.len() == chunk {
                break;
            }
        }
        if buffered.is_empty() {
            break;
        }
        offered += buffered.len() as u64;
        arrival_clock += buffered.len() as f64 / offered_rate;

        let dropped_before = shedder.dropped();
        // Shed decisions stay per element (the error-diffusion accumulator
        // advances once per arrival, so keep-permille semantics are
        // unchanged); the admitted sub-stream is compacted into a staging
        // buffer and ingested as one columnar batch per chunk.
        admitted.clear();
        admitted.extend(buffered.iter().copied().filter(|_| shedder.admit()));
        engine.push_batch(admitted.as_slice());
        let dropped_now = shedder.dropped() - dropped_before;
        if obs.is_enabled() && dropped_now > 0 {
            // One shedding event per chunk that actually dropped arrivals,
            // plus the element count it cost.
            obs.count("dsms_shed_events", 1);
            obs.count("dsms_shed_elements", dropped_now);
            obs.record_event(gsm_obs::EngineEvent::Shed {
                source: "ingest",
                dropped: dropped_now,
            });
        }

        // Controller: estimate the engine's sustained capacity from the
        // *cumulative* service rate (per-chunk times are spiky — GPU
        // batches land on chunk boundaries) and target keep = capacity/R.
        let service_now = engine.total_time().as_secs();
        if service_now > 0.0 && shedder.admitted() > 0 {
            let capacity = shedder.admitted() as f64 / service_now;
            let target = (capacity / offered_rate).min(1.0);
            // Light damping for the first chunks' estimation noise.
            let next = 0.3 * shedder.keep_fraction() + 0.7 * target;
            shedder.set_keep_fraction(next);
        }
    }
    engine.flush();
    if obs.is_enabled() {
        // Keep fraction as parts-per-thousand (gauges are integral).
        obs.gauge_set(
            "dsms_keep_permille",
            (shedder.keep_fraction() * 1000.0).round() as i64,
        );
    }

    let service_time = engine.total_time().as_secs();
    ShedReport {
        offered,
        processed: shedder.admitted(),
        shed: shedder.dropped(),
        offered_rate,
        service_rate: if service_time > 0.0 {
            shedder.admitted() as f64 / service_time
        } else {
            f64::INFINITY
        },
        lag_seconds: service_time - arrival_clock,
        keep_fraction: shedder.keep_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsm_core::Engine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1000.0)).collect()
    }

    #[test]
    fn decimator_keeps_the_requested_fraction() {
        let mut s = LoadShedder::new(0.3);
        for _ in 0..10_000 {
            let _ = s.admit();
        }
        let kept = s.admitted() as f64 / 10_000.0;
        assert!((kept - 0.3).abs() < 0.01, "kept {kept}");
        // Deterministic decimation is evenly spread: no run of 4+
        // consecutive admits at keep=0.3.
        let mut s2 = LoadShedder::new(0.3);
        let mut run = 0;
        for _ in 0..1000 {
            if s2.admit() {
                run += 1;
                assert!(run < 4);
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn no_shedding_below_capacity() {
        let data = uniform(40_000, 1);
        let mut eng = StreamEngine::new(Engine::CpuSim).with_n_hint(40_000);
        let _ = eng.register_frequency(0.001);
        // Probe the service rate, then offer well below it.
        let mut probe = StreamEngine::new(Engine::CpuSim).with_n_hint(40_000);
        let _ = probe.register_frequency(0.001);
        probe.push_all(data.iter().copied());
        probe.flush();
        let capacity = probe.service_rate();

        let report = run_at_rate(&mut eng, data.iter().copied(), capacity * 0.3);
        assert_eq!(report.shed, 0, "{report:?}");
        assert_eq!(report.processed, 40_000);
    }

    #[test]
    fn overload_sheds_to_the_capacity_ratio() {
        let data = uniform(120_000, 2);
        let mut probe = StreamEngine::new(Engine::CpuSim).with_n_hint(120_000);
        let _ = probe.register_frequency(0.001);
        probe.push_all(data.iter().copied());
        probe.flush();
        let capacity = probe.service_rate();

        // Offer 4x capacity: the controller must converge near keep = 0.25.
        let mut eng = StreamEngine::new(Engine::CpuSim).with_n_hint(120_000);
        let _ = eng.register_frequency(0.001);
        let report = run_at_rate(&mut eng, data.iter().copied(), capacity * 4.0);
        let shed = report.shed_fraction();
        assert!(
            (0.55..0.9).contains(&shed),
            "shed fraction {shed} should approach 0.75: {report:?}"
        );
        // Backlog must stay bounded (within a second of the arrival clock).
        assert!(report.lag_seconds < 1.0, "{report:?}");
    }

    #[test]
    fn recorder_counts_shed_events() {
        let data = uniform(60_000, 5);
        let mut probe = StreamEngine::new(Engine::CpuSim).with_n_hint(60_000);
        let _ = probe.register_frequency(0.001);
        probe.push_all(data.iter().copied());
        probe.flush();
        let capacity = probe.service_rate();

        let rec = gsm_obs::Recorder::enabled();
        let mut eng = StreamEngine::new(Engine::CpuSim)
            .with_n_hint(60_000)
            .with_recorder(rec.clone());
        let _ = eng.register_frequency(0.001);
        let report = run_at_rate(&mut eng, data.iter().copied(), capacity * 4.0);
        assert!(report.shed > 0, "4x overload must shed: {report:?}");
        assert_eq!(rec.counter("dsms_shed_elements"), report.shed);
        assert!(rec.counter("dsms_shed_events") > 0);
        // Every shed chunk also leaves a flight-recorder mark, and the
        // per-event drop counts reconcile with the aggregate counter.
        let shed_events: Vec<_> = rec
            .flight_events()
            .into_iter()
            .filter(|e| matches!(e.event, gsm_obs::EngineEvent::Shed { .. }))
            .collect();
        assert_eq!(shed_events.len() as u64, rec.counter("dsms_shed_events"));
        let dropped_sum: u64 = shed_events
            .iter()
            .map(|e| match e.event {
                gsm_obs::EngineEvent::Shed { dropped, .. } => dropped,
                _ => 0,
            })
            .sum();
        assert_eq!(dropped_sum, report.shed);
        let keep = rec.gauge("dsms_keep_permille").unwrap().current;
        assert_eq!(keep, (report.keep_fraction * 1000.0).round() as i64);
    }

    #[test]
    fn shed_quantiles_remain_unbiased() {
        // Uniform decimation preserves the distribution: a quantile query
        // over the kept sub-stream stays close to the full-stream value.
        let data = uniform(100_000, 3);
        let mut eng = StreamEngine::new(Engine::Host).with_n_hint(100_000);
        let q = eng.register_quantile(0.01);
        // Host engine has zero service time → force shedding manually.
        let mut shedder = LoadShedder::new(0.25);
        for &v in &data {
            if shedder.admit() {
                eng.push(v);
            }
        }
        let median = eng.quantile(q, 0.5);
        let mut sorted = data;
        sorted.sort_by(f32::total_cmp);
        let exact = sorted[sorted.len() / 2];
        assert!(
            (median - exact).abs() < 25.0,
            "median {median} vs exact {exact} (range 0..1000)"
        );
    }
}
