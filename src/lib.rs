#![warn(missing_docs)]

//! # gsm — GPU stream mining
//!
//! A from-scratch Rust reproduction of *Govindaraju, Raghuvanshi, Manocha:
//! "Fast and Approximate Stream Mining of Quantiles and Frequencies Using
//! Graphics Processors"* (SIGMOD 2005): ε-approximate quantile and
//! frequency estimation over large data streams with per-window sorting
//! offloaded to a (simulated) GPU rasterization pipeline.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] ([`gsm_core`]) — the estimators: [`core::QuantileEstimator`],
//!   [`core::FrequencyEstimator`], sliding-window variants, hierarchical
//!   heavy hitters, correlated sums, engine selection, and time breakdowns.
//! * [`dsms`] ([`gsm_dsms`]) — the surrounding system: continuous queries
//!   sharing one co-processor pipeline, load shedding, checkpoint/restore.
//! * [`sort`] ([`gsm_sort`]) — the sorting engines: the paper's PBSN
//!   rasterization sorter, the bitonic fragment-program baseline, and
//!   instrumented CPU quicksort.
//! * [`sketch`] ([`gsm_sketch`]) — the summaries: Greenwald–Khanna,
//!   Manku–Motwani lossy counting, Misra–Gries, exponential histograms,
//!   sliding windows, and exact oracles.
//! * [`gpu`] ([`gsm_gpu`]) — the simulated GeForce 6800 Ultra.
//! * [`cpu`] ([`gsm_cpu`]) — the simulated Pentium IV timing model.
//! * [`stream`] ([`gsm_stream`]) — generators, windowing, and the software
//!   `F16` type.
//! * [`model`] ([`gsm_model`]) — simulated-time primitives.
//! * [`obs`] ([`gsm_obs`]) — zero-dependency tracing and metrics: spans,
//!   counters, gauges, latency histograms, and Prometheus / Chrome-trace
//!   exporters over every layer above.
//! * [`serve`] ([`gsm_serve`]) — the concurrent query frontend: snapshot-
//!   isolated readers over a serving [`dsms::StreamEngine`], a bounded
//!   worker pool with admission control and deadlines, and a
//!   line-delimited TCP front.
//! * [`durable`] ([`gsm_durable`]) — crash-safe durability: the segmented
//!   CRC-checksummed write-ahead log, the atomic checkpoint store, and the
//!   deterministic fault-injection plan behind the recovery gate.
//! * [`verify`] ([`gsm_verify`]) — the standing verification gate:
//!   deterministic adversarial stream generators, exact-oracle bound
//!   auditors ([`verify::AuditReport`]), and the differential driver that
//!   fans streams across every engine × estimator.
//!
//! ## Quickstart
//!
//! ```
//! use gsm::core::{Engine, FrequencyEstimator, QuantileEstimator};
//!
//! // Median of a skewed stream, sorting windows on the simulated GPU.
//! let mut q = QuantileEstimator::builder(0.01).engine(Engine::GpuSim).build();
//! let mut f = FrequencyEstimator::builder(0.01).engine(Engine::GpuSim).build();
//! for i in 0..50_000u32 {
//!     let v = (i % 50) as f32; // each value is 2% of the stream
//!     q.push(v);
//!     f.push(v);
//! }
//! let median = q.query(0.5);
//! assert!((20.0..=30.0).contains(&median));
//! let hh = f.heavy_hitters(0.015); // 1.5% support: all 50 values qualify
//! assert_eq!(hh.len(), 50);
//! println!("simulated GPU time: {}", q.total_time());
//! ```

pub use gsm_core as core;
pub use gsm_cpu as cpu;
pub use gsm_dsms as dsms;
pub use gsm_durable as durable;
pub use gsm_gpu as gpu;
pub use gsm_model as model;
pub use gsm_obs as obs;
pub use gsm_serve as serve;
pub use gsm_sketch as sketch;
pub use gsm_sort as sort;
pub use gsm_stream as stream;
pub use gsm_verify as verify;
